// Package server implements didtd, the long-lived HTTP front-end over the
// experiment suite and the closed-loop simulator. It turns the one-shot
// CLI workflow (cmd/experiments, cmd/didtsim) into an always-on service:
//
//	POST /v1/sweep      run experiment sweeps (table2, fig10, fig14..18, ...)
//	POST /v1/simulate   run one closed-loop simulation
//	POST /v1/batch      run many simulate specs, streamed as NDJSON records
//	GET  /healthz       liveness + drain state
//	GET  /metrics       telemetry registry snapshot (canonical JSON)
//	GET  /debug/pprof/  pprof profiling endpoints
//
// The determinism contract is the service's API guarantee: a /v1/sweep
// response body is exactly the experiment's rendered output — the bytes
// cmd/experiments prints for the same parameters — and is identical at
// any parallelism setting and regardless of what the shared caches
// already hold, because every cached artifact is a deterministic function
// of its key. Requests carry explicit seeds and deadlines; admission is a
// bounded queue in front of the sweep engine (429 when full, 503 while
// draining), request contexts thread into sim.Map, and graceful shutdown
// drains running sweeps before the process exits.
//
// Determinism is also what makes results cacheable at the wire: every
// sweep/simulate response is filed in the optional disk store under its
// content key and served from disk on repeat requests (strong ETag,
// If-None-Match → 304), and concurrent identical requests coalesce onto
// one engine run through a per-key singleflight — N clients asking the
// same question cost one run-slot admission and one simulation.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/isa"
	"didt/internal/sim"
	"didt/internal/spec"
	"didt/internal/store"
	"didt/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// MaxConcurrent bounds how many sweep/simulate requests execute at
	// once (each fans out over its own worker count); <= 0 selects 2.
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for a run
	// slot; < 0 selects 0 (no queue), 0 selects the default 8.
	QueueDepth int
	// DefaultTimeout bounds requests that carry no explicit deadline;
	// <= 0 selects 5 minutes.
	DefaultTimeout time.Duration
	// Parallel is the per-request sweep worker count used when a request
	// does not specify one; <= 0 selects sim.DefaultWorkers.
	Parallel int
	// Store, when non-nil, is the durable result store: sweep/simulate/
	// batch responses are persisted under their content key and repeat
	// requests are served from disk — across process restarts — without
	// admitting a run. nil disables persistence; coalescing still works.
	Store *store.Store
	// Registry receives the service metrics; nil selects the process-wide
	// telemetry.Default() (which also carries the engine/cache metrics).
	Registry *telemetry.Registry
	// Logger receives the JSON access log and app-level records; nil
	// disables logging entirely (tests, embedded use).
	Logger *slog.Logger
	// Spans receives request spans (root span per request, per-experiment
	// and per-job children). nil — or a disabled tracer — means requests
	// still carry trace ids for log correlation, but no spans are recorded.
	Spans *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	return c
}

// Server is the didtd HTTP service. Create with New; the zero value is
// not usable.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	started time.Time

	// Admission control: admitted holds every request that occupies the
	// service (queued or running, cap MaxConcurrent+QueueDepth); running
	// holds the subset actually executing (cap MaxConcurrent). A request
	// that cannot enter admitted is rejected with 429; one that is queued
	// when shutdown begins is released with 503 via drain.
	admitted chan struct{}
	running  chan struct{}

	drainOnce sync.Once
	drain     chan struct{}
	inflight  sync.WaitGroup

	// flights coalesces concurrent identical work requests at the wire:
	// per result key, one leader runs the engine while every other
	// request waits for the leader's bytes (see cache.go).
	flights sim.FlightGroup[string, wireResult]

	mRequests     *telemetry.Counter
	mRejected     *telemetry.Counter
	mUnavailable  *telemetry.Counter
	mEngineRuns   *telemetry.Counter
	mCoalesced    *telemetry.Counter
	mNotModified  *telemetry.Counter
	mBatchEntries *telemetry.Counter
	mBatchDeduped *telemetry.Counter
	gQueueDepth   *telemetry.Gauge
	gActive       *telemetry.Gauge

	// Test hooks, nil in production: testRunStarted receives one value
	// when a request passes admission and starts running; testRunGate,
	// when non-nil, blocks the running request until it is closed.
	testRunStarted chan<- struct{}
	testRunGate    <-chan struct{}
}

// New assembles a server. It does not listen; wire Handler() into an
// http.Server (see cmd/didtd).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		started:  time.Now(),
		admitted: make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		running:  make(chan struct{}, cfg.MaxConcurrent),
		drain:    make(chan struct{}),

		mRequests:     cfg.Registry.Counter("didtd.requests_total"),
		mRejected:     cfg.Registry.Counter("didtd.rejected_total"),
		mUnavailable:  cfg.Registry.Counter("didtd.unavailable_total"),
		mEngineRuns:   cfg.Registry.Counter("didtd.engine_runs_total"),
		mCoalesced:    cfg.Registry.Counter("didtd.coalesced_total"),
		mNotModified:  cfg.Registry.Counter("didtd.not_modified_total"),
		mBatchEntries: cfg.Registry.Counter("didtd.batch.entries_total"),
		mBatchDeduped: cfg.Registry.Counter("didtd.batch.deduped_total"),
		gQueueDepth:   cfg.Registry.Gauge("didtd.admission.queue_depth"),
		gActive:       cfg.Registry.Gauge("didtd.active_requests"),
	}
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/spec/default", s.handleSpecDefault)
	s.mux.HandleFunc("GET /v1/spans", s.handleSpans)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler: the route mux behind the
// observe middleware (trace ids, root spans, access log, latency metric).
func (s *Server) Handler() http.Handler { return s.observe(s.mux) }

// BeginShutdown puts the server into draining mode: every subsequent (and
// every queued) sweep/simulate request is rejected with 503 while already
// running requests continue. Idempotent.
func (s *Server) BeginShutdown() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Drain enters draining mode and blocks until every in-flight request has
// finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginShutdown()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// queuedLen reports how many admitted requests are waiting for a run
// slot, clamped at zero: the two channel length reads are not atomic
// against concurrent admission transitions, so the raw difference can
// transiently read negative (a request released admitted between the two
// reads). Every reporting surface goes through this clamp.
func (s *Server) queuedLen() int {
	if q := len(s.admitted) - len(s.running); q > 0 {
		return q
	}
	return 0
}

func (s *Server) updateAdmissionGauges() {
	active := len(s.running)
	s.gActive.Set(float64(active))
	if q := len(s.admitted) - active; q >= 0 {
		s.gQueueDepth.Set(float64(q))
	}
}

// acceptWork is the front gate every work request passes before touching
// the store, a flight, or admission: it counts the request and turns all
// new work away while draining. Store hits and coalesced followers pass
// through here — they are real requests — but never proceed to admit;
// only flight leaders that must actually run the engine do.
func (s *Server) acceptWork(w http.ResponseWriter, r *http.Request) bool {
	s.mRequests.Inc()
	if s.draining() {
		s.mUnavailable.Inc()
		s.logAdmission(r, "draining")
		writeError(w, r, http.StatusServiceUnavailable, codeDraining,
			"didtd: draining, not accepting new work")
		return false
	}
	return true
}

// admit reserves a run slot for a work request, answering the request
// itself when it cannot run (queue overflow → 429, drained while queued →
// 503, abandoned while queued → client is gone, nothing to write). The
// returned release function must be called exactly once when ok. Callers
// must have passed acceptWork first; admit itself no longer rechecks the
// drain flag on entry because draining lets already-accepted work finish.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	select {
	case s.admitted <- struct{}{}:
	default:
		s.mRejected.Inc()
		s.logAdmission(r, "overflow")
		writeError(w, r, http.StatusTooManyRequests, codeOverflow,
			fmt.Sprintf("didtd: admission queue full (%d queued + %d running)",
				s.cfg.QueueDepth, s.cfg.MaxConcurrent))
		return nil, false
	}
	s.inflight.Add(1)
	s.updateAdmissionGauges()
	// Queue wait: time between entering the admitted set and winning a run
	// slot. Feeds the latency histogram and the access log; the rate-style
	// counterpart lives in sim.pool.queue_wait_ns_total.
	queued := telemetry.StartTimer()
	select {
	case s.running <- struct{}{}:
	case <-s.drain:
		<-s.admitted //didt:allow ctxflow -- provably non-blocking: returns the token this request put into the buffered admitted channel
		s.inflight.Done()
		s.updateAdmissionGauges()
		s.mUnavailable.Inc()
		s.logAdmission(r, "drained_while_queued")
		writeError(w, r, http.StatusServiceUnavailable, codeDraining,
			"didtd: draining, not accepting new work")
		return nil, false
	case <-r.Context().Done():
		<-s.admitted //didt:allow ctxflow -- provably non-blocking: returns the token this request put into the buffered admitted channel
		s.inflight.Done()
		s.updateAdmissionGauges()
		setOutcome(r.Context(), "client_gone")
		return nil, false // client is gone; nothing to answer
	}
	waitMS := queued.ElapsedMS()
	setQueueWait(r.Context(), waitMS)
	// 0-30s linear in 120 buckets (250ms each); created on first admission
	// so a fresh server's snapshot is unchanged.
	s.cfg.Registry.Histogram("didtd.admission.queue_wait_ms", 0, 30_000, 120).Observe(waitMS)
	s.updateAdmissionGauges()
	release = func() {
		<-s.running  //didt:allow ctxflow -- provably non-blocking: returns the run slot this request won above
		<-s.admitted //didt:allow ctxflow -- provably non-blocking: returns the token this request put into the buffered admitted channel
		s.inflight.Done()
		s.updateAdmissionGauges()
	}
	// Test hooks (nil in production). Both sit on the path every admitted
	// sweep traverses — including SSE progress streams — so an unguarded
	// send here once let a vanished client wedge a run slot forever: the
	// hook channels are unbuffered, and nothing drained them after the
	// test (or the client) gave up. Guard both with the request context,
	// releasing the slot on abandonment. Deliberately NOT guarded with the
	// drain signal: this request is already admitted, and draining lets
	// admitted work finish — only new and still-queued requests are turned
	// away.
	if s.testRunStarted != nil {
		select {
		case s.testRunStarted <- struct{}{}:
		case <-r.Context().Done():
			release()
			setOutcome(r.Context(), "client_gone")
			return nil, false
		}
	}
	if s.testRunGate != nil {
		select {
		case <-s.testRunGate:
		case <-r.Context().Done():
			release()
			setOutcome(r.Context(), "client_gone")
			return nil, false
		}
	}
	return release, true
}

// requestContext derives the request's execution context: the client's
// context bounded by the explicit per-request deadline (milliseconds) or
// the server default.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// decodeJSON parses a bounded request body into v, answering malformed
// bodies with the unified envelope (oversized ones as 413).
func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	return decodeJSONLimit(w, r, v, 1<<20)
}

// decodeJSONLimit is decodeJSON with an explicit size bound (batch bodies
// carry thousands of specs and get a larger one). The body must be
// exactly one JSON document: trailing data after the first document is a
// 400, not silently ignored — a client that concatenated two requests
// into one body would otherwise have its second request dropped and the
// first answered as if it were the whole story.
func decodeJSONLimit(w http.ResponseWriter, r *http.Request, v interface{}, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, r, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
				"didtd: request body exceeds "+fmt.Sprint(tooLarge.Limit)+" bytes")
			return false
		}
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "didtd: bad request: "+err.Error())
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			"didtd: bad request: unexpected data after JSON body")
		return false
	}
	return true
}

// writeRunError maps a failed run to a status code: deadline → 504,
// client cancellation → nothing (the connection is gone), anything else
// → 500. All through the unified envelope.
func writeRunError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusGatewayTimeout, codeTimeout, "didtd: deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled) && r.Context().Err() != nil:
		// Client disconnected; no one is listening.
		setOutcome(r.Context(), "client_gone")
	default:
		writeError(w, r, http.StatusInternalServerError, codeInternal, "didtd: run failed: "+err.Error())
	}
}

// logAdmission emits one app-level record for a rejected or drained
// request; the access log then records the response itself.
func (s *Server) logAdmission(r *http.Request, reason string) {
	if l := s.cfg.Logger; l != nil {
		l.LogAttrs(r.Context(), slog.LevelWarn, "admission rejected",
			slog.String("reason", reason),
			slog.String("path", r.URL.Path),
			slog.String("trace_id", telemetry.TraceIDFromContext(r.Context())),
			slog.Int("active", len(s.running)),
			slog.Int("queued", s.queuedLen()))
	}
}

// SweepRequest selects experiments and the configuration to run them
// under. Zero-valued fields take the defaults of cmd/experiments (the
// full-size configuration, or the quick one when Quick is set), so equal
// parameters produce byte-identical output across the CLI and the server.
type SweepRequest struct {
	// Run names one experiment id or "all"; Runs, when non-empty, names
	// an explicit list and takes precedence.
	Run  string   `json:"run,omitempty"`
	Runs []string `json:"runs,omitempty"`

	Quick            bool     `json:"quick,omitempty"`
	Cycles           uint64   `json:"cycles,omitempty"`
	Warmup           uint64   `json:"warmup,omitempty"`
	Iterations       int      `json:"iterations,omitempty"`
	StressIterations int      `json:"stress_iterations,omitempty"`
	Benchmarks       []string `json:"benchmarks,omitempty"`

	// Seed is applied only when present, mirroring the CLI's "flag was
	// explicitly set" semantics (an explicit 0 is a valid seed).
	Seed *int64 `json:"seed,omitempty"`

	// Parallel is the sweep worker count (0 = server default). The
	// response is byte-identical at any setting.
	Parallel int `json:"parallel,omitempty"`

	// TimeoutMS bounds the request (0 = server default deadline).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// Progress selects the response mode: "" (default) answers with the
	// rendered bytes only; "sse" streams per-experiment progress as
	// Server-Sent Events and delivers the identical rendered bytes in the
	// final `result` event. The `progress=sse` query parameter is
	// equivalent.
	Progress string `json:"progress,omitempty"`
}

// config assembles the experiments configuration for the request.
func (req *SweepRequest) config(serverParallel int) experiments.Config {
	cfg := experiments.Default()
	if req.Quick {
		cfg = experiments.Quick()
	}
	if req.Cycles != 0 {
		cfg.Cycles = req.Cycles
	}
	if req.Warmup != 0 {
		cfg.Warmup = req.Warmup
	}
	if req.Iterations != 0 {
		cfg.Iterations = req.Iterations
	}
	if req.StressIterations != 0 {
		cfg.StressIter = req.StressIterations
	}
	if len(req.Benchmarks) > 0 {
		cfg.Benchmarks = req.Benchmarks
	}
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	cfg.Parallel = req.Parallel
	if cfg.Parallel <= 0 {
		cfg.Parallel = serverParallel
	}
	return cfg
}

// ids resolves the requested experiment list against the registry,
// preserving request order ("all" expands to the paper's order).
func (req *SweepRequest) ids() ([]string, error) {
	ids := req.Runs
	if len(ids) == 0 {
		if req.Run == "" {
			return nil, errors.New("request names no experiment (set run or runs)")
		}
		if req.Run == "all" {
			return experiments.IDs(), nil
		}
		ids = []string{req.Run}
	}
	return experiments.ResolveIDs(ids)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ids, err := req.ids()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "didtd: bad request: "+err.Error())
		return
	}
	cfg := req.config(s.cfg.Parallel)
	if err := cfg.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "didtd: bad request: "+err.Error())
		return
	}
	sse := req.Progress == "sse" || r.URL.Query().Get("progress") == "sse"
	if req.Progress != "" && req.Progress != "sse" {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			"didtd: bad request: unknown progress mode "+fmt.Sprintf("%q", req.Progress)+" (use \"sse\")")
		return
	}
	setSpecKey(r.Context(), cfg.Spec().Key())
	if !s.acceptWork(w, r) {
		return
	}
	if sse {
		s.handleSweepSSE(w, r, cfg, ids, req.TimeoutMS)
		return
	}
	// The plain (non-SSE) response is a pure function of its key, so it
	// rides the full caching path: store, singleflight, then the engine.
	key := "didtd|sweep|" + cfg.ResultKey(ids)
	s.serveCached(w, r, key, req.TimeoutMS, "text/plain; charset=utf-8",
		func(h http.Header) { h.Set("X-Didtd-Experiments", strings.Join(ids, ",")) },
		func(ctx context.Context) ([]byte, error) { return s.runSweep(ctx, cfg, ids, nil) })
}

// handleSweepSSE is the live-progress variant. SSE deliberately bypasses
// the store and the singleflight: progress events only exist while the
// engine actually runs, so an SSE request always admits and executes —
// its final `result` event still carries the canonical bytes.
func (s *Server) handleSweepSSE(w http.ResponseWriter, r *http.Request, cfg experiments.Config, ids []string, timeoutMS int64) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r, timeoutMS)
	defer cancel()
	stream, err := newSSEStream(w)
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, codeInternal, "didtd: "+err.Error())
		return
	}
	body, err := s.runSweep(ctx, cfg, ids, stream)
	if err != nil {
		stream.errorEvent(r, err)
		setOutcome(r.Context(), "error")
		return
	}
	stream.resultEvent(body, ids)
}

// runSweep renders the requested experiments in order into one buffer —
// the exact bytes the wire (and the store) carries. Nothing is written
// until every runner has succeeded, preserving the determinism contract;
// stream, when non-nil, receives per-experiment progress events.
func (s *Server) runSweep(ctx context.Context, cfg experiments.Config, ids []string, stream *sseStream) ([]byte, error) {
	// The request context (trace id, tracer, current span) rides into the
	// experiment runners and from there into sim.Map job dispatch.
	cfg.Ctx = ctx
	reg := experiments.Registry()
	var buf bytes.Buffer
	for i, id := range ids {
		stream.experimentEvent(id, "start", i, len(ids), 0)
		var span *telemetry.Span
		ectx := ctx
		if s.cfg.Spans.Enabled() {
			ectx, span = s.cfg.Spans.Start(ctx, "sweep.experiment",
				telemetry.AttrStr("experiment", id))
		}
		ecfg := cfg
		ecfg.Ctx = ectx
		timer := telemetry.StartTimer()
		err := reg[id](ecfg, &buf)
		durMS := timer.ElapsedMS()
		if span.Enabled() {
			if err != nil {
				span.SetAttr("error", "true")
			}
			span.End()
		}
		// Per-experiment duration histogram, one labeled series per id
		// (0-5min linear, 5s buckets), created on first observation.
		s.cfg.Registry.Histogram(
			`didtd.sweep.experiment_duration_ms{experiment="`+id+`"}`,
			0, 300_000, 60).Observe(durMS)
		if err != nil {
			return nil, err
		}
		stream.experimentEvent(id, "done", i, len(ids), durMS)
	}
	return buf.Bytes(), nil
}

// SimulateRequest configures one closed-loop run, mirroring cmd/didtsim.
// Two forms exist: the flat legacy fields below, or a full RunSpec in
// Spec. The two must not be mixed in one request.
type SimulateRequest struct {
	// Spec, when present, is the complete run description; every flat
	// field except timeout_ms must then be absent. GET /v1/spec/default
	// returns the fully resolved default to start from.
	Spec *spec.RunSpec `json:"spec,omitempty"`

	// Workload is "stressmark" or a SPEC2000 profile name (workload.Names).
	Workload string `json:"workload,omitempty"`

	ImpedancePct float64 `json:"impedance_pct,omitempty"` // 0 = 2.0 (200%)
	Control      bool    `json:"control,omitempty"`
	Mechanism    string  `json:"mechanism,omitempty"` // FU, FU/DL1, FU/DL1/IL1, ideal
	Delay        int     `json:"delay,omitempty"`
	NoiseMV      float64 `json:"noise_mv,omitempty"`
	Cycles       uint64  `json:"cycles,omitempty"`     // 0 = 400000
	Warmup       uint64  `json:"warmup,omitempty"`     // 0 = core default
	Iterations   int     `json:"iterations,omitempty"` // 0 = 3000
	// Seed is applied only when present, mirroring the CLI's "flag was
	// explicitly set" semantics: an absent seed leaves the spec's seed
	// unset (resolved by WithDefaults), while an explicit 0 is a valid
	// seed. A bare int64 cannot express that difference — `"seed":0`
	// and no seed at all would both decode to 0 yet mean different runs.
	Seed      *int64 `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// SimulateResponse is the JSON form of a run's summary statistics.
type SimulateResponse struct {
	Workload string `json:"workload"`
	// SpecKey is the resolved spec's content hash; set only for requests
	// made through the spec form (legacy responses are unchanged).
	SpecKey       string  `json:"spec_key,omitempty"`
	Cycles        uint64  `json:"cycles"`
	Instructions  uint64  `json:"instructions"`
	IPC           float64 `json:"ipc"`
	IMinA         float64 `json:"i_min_a"`
	IMaxA         float64 `json:"i_max_a"`
	MinV          float64 `json:"min_v"`
	MaxV          float64 `json:"max_v"`
	VNominal      float64 `json:"v_nominal"`
	Emergencies   uint64  `json:"emergencies"`
	EmergencyFreq float64 `json:"emergency_freq"`
	EnergyJ       float64 `json:"energy_j"`
	AvgPowerW     float64 `json:"avg_power_w"`

	Control *ControlSummary `json:"control,omitempty"`
}

// ControlSummary reports the controller's solved thresholds and actuation
// counts for controlled runs.
type ControlSummary struct {
	Mechanism    string  `json:"mechanism"`
	Delay        int     `json:"delay"`
	NoiseMV      float64 `json:"noise_mv"`
	Stable       bool    `json:"stable"`
	LowV         float64 `json:"low_v"`
	HighV        float64 `json:"high_v"`
	SafeWindowMV float64 `json:"safe_window_mv"`
	Gating       uint64  `json:"gating_actuations"`
	Phantom      uint64  `json:"phantom_actuations"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sp, err := req.spec()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "didtd: bad request: "+err.Error())
		return
	}
	resolved, err := sp.Resolve()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "didtd: bad request: "+err.Error())
		return
	}
	program, err := resolved.Program()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "didtd: bad request: "+err.Error())
		return
	}
	setSpecKey(r.Context(), resolved.Key())
	if !s.acceptWork(w, r) {
		return
	}
	s.serveCached(w, r, simulateStoreKey(resolved.Key(), req.Spec != nil), req.TimeoutMS,
		"application/json", nil,
		func(ctx context.Context) ([]byte, error) {
			return s.simulateBody(ctx, resolved, program, req.Spec != nil)
		})
}

// simulateStoreKey files a simulate response under the resolved spec's
// content hash. The request form is part of the identity because the two
// forms render different bodies for the same spec: only the spec form
// carries the spec_key field, so sharing one entry would leak it into
// legacy responses (or strip it from spec-form ones).
func simulateStoreKey(specKey string, specForm bool) string {
	form := "flat"
	if specForm {
		form = "spec"
	}
	return "didtd|simulate|" + form + "|" + specKey
}

// simulateBody runs one simulation and renders the JSON summary — the
// exact bytes the wire carries, so the store and coalesced followers
// serve responses byte-identical to a fresh run.
func (s *Server) simulateBody(ctx context.Context, resolved spec.RunSpec, program isa.Program, specForm bool) ([]byte, error) {
	opts := core.Options{Spec: resolved}
	// Run through the sweep engine so the request context is honoured at
	// the job boundary (a single simulation is a one-job sweep).
	results, err := sim.Map(ctx, 1, 1, func(context.Context, int) (*core.Result, error) {
		sys, err := core.NewSystem(program, opts)
		if err != nil {
			return nil, err
		}
		defer sys.Close()
		return sys.Run()
	})
	if err != nil {
		return nil, err
	}
	res := results[0]
	resp := SimulateResponse{
		Workload:      resolved.Workload.Name,
		Cycles:        res.Cycles,
		Instructions:  res.Stats.Instructions,
		IPC:           res.IPC(),
		IMinA:         res.IMin,
		IMaxA:         res.IMax,
		MinV:          res.MinV,
		MaxV:          res.MaxV,
		VNominal:      res.VNominal,
		Emergencies:   res.Emergencies,
		EmergencyFreq: res.EmergencyFreq,
		EnergyJ:       res.Energy,
		AvgPowerW:     res.AvgPower,
	}
	if specForm {
		resp.SpecKey = resolved.Key()
	}
	if resolved.Control.Enabled {
		mech, _ := resolved.Mechanism()
		resp.Control = &ControlSummary{
			Mechanism:    mech.Name,
			Delay:        resolved.Sensor.DelayCycles,
			NoiseMV:      resolved.Sensor.NoiseMV,
			Stable:       res.Thresholds.Stable,
			LowV:         res.Thresholds.Low,
			HighV:        res.Thresholds.High,
			SafeWindowMV: res.Thresholds.SafeWindow * 1e3,
			Gating:       res.LowEvents,
			Phantom:      res.HighEvents,
		}
	}
	return renderJSON(resp)
}

// spec assembles the run spec a simulate request describes: the embedded
// RunSpec verbatim for spec-form requests, or the flat fields mapped onto
// a spec for the legacy form. Mixing the two forms is an error — silently
// ignoring flat fields next to a spec would mask caller bugs.
func (req *SimulateRequest) spec() (spec.RunSpec, error) {
	if req.Spec != nil {
		if req.Workload != "" || req.ImpedancePct != 0 || req.Control ||
			req.Mechanism != "" || req.Delay != 0 || req.NoiseMV != 0 ||
			req.Cycles != 0 || req.Warmup != 0 || req.Iterations != 0 ||
			req.Seed != nil {
			return spec.RunSpec{}, errors.New("spec cannot be combined with flat simulate fields")
		}
		return *req.Spec, nil
	}
	if req.Workload == "" {
		return spec.RunSpec{}, errors.New("request names no workload")
	}
	var sp spec.RunSpec
	sp.Workload.Name = req.Workload
	sp.Workload.Iterations = req.Iterations
	sp.PDN.ImpedancePct = req.ImpedancePct
	sp.Control.Enabled = req.Control
	sp.Actuator.Mechanism = req.Mechanism
	sp.Sensor.DelayCycles = req.Delay
	sp.Sensor.NoiseMV = req.NoiseMV
	// The service's historical cycle budget is tighter than the spec
	// default (requests are interactive), so 0 keeps meaning 400k here.
	sp.Budget.MaxCycles = req.Cycles
	if sp.Budget.MaxCycles == 0 {
		sp.Budget.MaxCycles = 400_000
	}
	sp.Budget.WarmupCycles = req.Warmup
	if req.Seed != nil {
		sp.Seed = spec.NewSeed(*req.Seed)
	}
	return sp, nil
}

// handleSpecDefault serves the fully resolved default run spec — the
// canonical starting point callers override to build spec-form simulate
// requests.
func (s *Server) handleSpecDefault(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, spec.Default())
}

// buildVersion resolves the module version and VCS revision once; "devel"
// when built outside a module release (go test, local builds).
var buildVersion = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
			return version + "+" + kv.Value[:12]
		}
	}
	return version
})

// goVersion reports the toolchain that built the binary.
var goVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		return bi.GoVersion
	}
	return "unknown"
})

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]interface{}{
		"status":          status,
		"version":         buildVersion(),
		"go_version":      goVersion(),
		"active_requests": len(s.running),
		"queued_requests": s.queuedLen(),
		"max_concurrent":  s.cfg.MaxConcurrent,
		"queue_depth":     s.cfg.QueueDepth,
		"uptime_s":        int64(time.Since(s.started).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		snap := s.cfg.Registry.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WritePrometheus(w, s.cfg.Registry.Snapshot())
	default:
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			"didtd: unknown metrics format "+fmt.Sprintf("%q", format)+" (use json or prometheus)")
	}
}

// handleSpans exports the completed request spans: JSONL by default,
// Chrome trace-event JSON with ?format=chrome (loadable in Perfetto).
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		telemetry.WriteSpansJSONL(w, s.cfg.Spans)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteSpanChromeTrace(w, s.cfg.Spans)
	default:
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			"didtd: unknown spans format "+fmt.Sprintf("%q", format)+" (use jsonl or chrome)")
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// renderJSON renders v exactly as writeJSON serializes it — two-space
// indent plus trailing newline — so stored bodies match live responses
// byte for byte.
func renderJSON(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
