package server

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"didt/internal/telemetry"
)

// Request observability: one middleware wraps the whole mux and gives
// every request a trace id, an optional root span, an access-log record,
// and a latency observation. Handlers annotate the in-flight request
// through requestInfo (spec key, queue wait, outcome) and the unified
// error envelope below carries the trace id back to the client, so a log
// line, an error response and the span export all correlate on one id.

// respWriter captures status and byte count, and forwards Flush so the
// SSE path can stream through it.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestInfo is the handler-to-middleware backchannel: the middleware
// allocates it before serving, handlers fill in what they learn (the
// request's spec key, how long admission queued it, how it ended), and
// the access log reads it after the handler returns.
type requestInfo struct {
	specKey     string
	queueWaitMS float64
	hasQueue    bool
	outcome     string
}

type ctxKeyReqInfo struct{}

func reqInfoFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(ctxKeyReqInfo{}).(*requestInfo)
	return ri
}

func setSpecKey(ctx context.Context, key string) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.specKey = key
	}
}

func setQueueWait(ctx context.Context, ms float64) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.queueWaitMS = ms
		ri.hasQueue = true
	}
}

func setOutcome(ctx context.Context, outcome string) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.outcome = outcome
	}
}

// observe is the outermost handler: trace id, root span, latency metric,
// access log. Its latency histogram is created on first observation — a
// fresh server's metrics snapshot stays byte-identical to pre-tracing
// builds until traffic arrives.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		ctx = telemetry.ContextWithTracer(ctx, s.cfg.Spans)
		traceID := telemetry.NewTraceID()
		ctx = telemetry.ContextWithTraceID(ctx, traceID)
		ri := &requestInfo{}
		ctx = context.WithValue(ctx, ctxKeyReqInfo{}, ri)

		var span *telemetry.Span
		if s.cfg.Spans.Enabled() {
			ctx, span = s.cfg.Spans.Start(ctx, "http.request",
				telemetry.AttrStr("method", r.Method),
				telemetry.AttrStr("path", r.URL.Path))
		}

		rw := &respWriter{ResponseWriter: w}
		timer := telemetry.StartTimer()
		next.ServeHTTP(rw, r.WithContext(ctx))
		durMS := timer.ElapsedMS()

		if rw.status == 0 {
			// Handler wrote nothing (e.g. client vanished while queued).
			rw.status = http.StatusOK
		}
		if ri.outcome == "" {
			if rw.status < 400 {
				ri.outcome = "ok"
			} else {
				ri.outcome = "error"
			}
		}

		if span.Enabled() {
			span.SetAttr("status", strconv.Itoa(rw.status))
			span.SetAttr("outcome", ri.outcome)
			if ri.specKey != "" {
				span.SetAttr("spec_key", ri.specKey)
			}
			span.End()
		}

		// Latency histogram: 0-60s linear in 120 buckets (500ms each); the
		// final bucket absorbs pathological requests.
		s.cfg.Registry.Histogram("didtd.request_duration_ms", 0, 60_000, 120).Observe(durMS)

		if l := s.cfg.Logger; l != nil {
			attrs := make([]slog.Attr, 0, 9)
			attrs = append(attrs,
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rw.status),
				slog.Int64("bytes", rw.bytes),
				slog.Float64("duration_ms", durMS),
				slog.String("trace_id", traceID),
				slog.String("outcome", ri.outcome),
			)
			if ri.specKey != "" {
				attrs = append(attrs, slog.String("spec_key", ri.specKey))
			}
			if ri.hasQueue {
				attrs = append(attrs, slog.Float64("queue_wait_ms", ri.queueWaitMS))
			}
			// Work endpoints log at info; health checks, scrapes and pprof
			// would drown them, so everything else logs at debug.
			level := slog.LevelDebug
			if strings.HasPrefix(r.URL.Path, "/v1/") {
				level = slog.LevelInfo
			}
			l.LogAttrs(r.Context(), level, "request", attrs...)
		}
	})
}

// errorEnvelope is the one JSON error shape every non-2xx didtd response
// uses: a human-readable message, a stable machine code, and the request's
// trace id for correlation with logs and span exports.
type errorEnvelope struct {
	Error   string `json:"error"`
	Code    string `json:"code"`
	TraceID string `json:"trace_id,omitempty"`
}

// Error codes. Stable API surface — clients switch on these.
const (
	codeBadRequest      = "bad_request"
	codePayloadTooLarge = "payload_too_large"
	codeOverflow        = "overflow"
	codeDraining        = "draining"
	codeTimeout         = "timeout"
	codeInternal        = "internal"
)

// writeError emits the unified envelope and records the outcome for the
// access log.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	setOutcome(r.Context(), code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorEnvelope{
		Error:   msg,
		Code:    code,
		TraceID: telemetry.TraceIDFromContext(r.Context()),
	})
}
