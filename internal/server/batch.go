package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"didt/internal/isa"
	"didt/internal/sim"
	"didt/internal/spec"
)

// Batch limits: a batch body may carry thousands of specs, so it gets a
// larger decode bound than the single-request endpoints, and the entry
// count is capped so one request cannot queue unbounded work behind one
// admission slot.
const (
	maxBatchEntries = 4096
	batchBodyLimit  = 16 << 20
)

// BatchRequest submits many simulations in one call. Every entry is a
// complete RunSpec (the spec form of /v1/simulate; flat fields are not
// accepted here) and is answered by one NDJSON record on the response
// stream, in completion order.
type BatchRequest struct {
	Specs []spec.RunSpec `json:"specs"`
	// TimeoutMS bounds the whole batch (0 = server default deadline).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchRecord is one line of the NDJSON batch response. Index is the
// entry's position in the request; identical specs collapse into one
// simulation but still answer one record each. Body, when status is
// "ok", is the exact /v1/simulate spec-form response object (compacted
// onto the single line).
type BatchRecord struct {
	Index   int             `json:"index"`
	SpecKey string          `json:"spec_key,omitempty"`
	Status  string          `json:"status"` // "ok" or "error"
	Body    json.RawMessage `json:"body,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// batchJob is one deduplicated unit of work: a resolved spec plus every
// request index that asked for it.
type batchJob struct {
	key      string
	resolved spec.RunSpec
	program  isa.Program
	indexes  []int
}

// handleBatch runs up to maxBatchEntries simulate specs under a single
// admission slot, streaming one NDJSON record per entry in completion
// order. Identical specs are deduplicated into one job, and each job
// resolves through the same store+singleflight path as /v1/simulate — a
// batch entry warms the store for later single requests and vice versa.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeJSONLimit(w, r, &req, batchBodyLimit) {
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			"didtd: bad request: batch names no specs")
		return
	}
	if len(req.Specs) > maxBatchEntries {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("didtd: bad request: batch has %d entries (max %d)", len(req.Specs), maxBatchEntries))
		return
	}
	if !s.acceptWork(w, r) {
		return
	}
	// One admission slot covers the whole batch: the batch is one client
	// occupying the service, however many entries it carries.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// Resolve every entry up front: invalid entries become immediate error
	// records without costing any work, and valid duplicates collapse into
	// one job answering all their indexes.
	invalid := make([]*BatchRecord, 0)
	var jobs []*batchJob
	byKey := map[string]*batchJob{}
	for i, sp := range req.Specs {
		s.mBatchEntries.Inc()
		resolved, err := sp.Resolve()
		if err != nil {
			invalid = append(invalid, &BatchRecord{Index: i, Status: "error", Error: "bad spec: " + err.Error()})
			continue
		}
		program, err := resolved.Program()
		if err != nil {
			invalid = append(invalid, &BatchRecord{Index: i, Status: "error", Error: "bad spec: " + err.Error()})
			continue
		}
		key := resolved.Key()
		if j := byKey[key]; j != nil {
			s.mBatchDeduped.Inc()
			j.indexes = append(j.indexes, i)
			continue
		}
		j := &batchJob{key: key, resolved: resolved, program: program, indexes: []int{i}}
		byKey[key] = j
		jobs = append(jobs, j)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(rec *BatchRecord) {
		enc.Encode(rec)
		if flusher != nil {
			flusher.Flush()
		}
	}
	for _, rec := range invalid {
		emit(rec)
	}

	if len(jobs) == 0 {
		setOutcome(r.Context(), "ok")
		return
	}

	// Fan the jobs out over a bounded worker pool. The results channel is
	// buffered to len(jobs), so a worker's send never blocks and every
	// worker exits as soon as the shared index counter runs dry — on
	// cancellation the jobs themselves fail fast (fetch and sim.Map both
	// check the dead context), so the pool drains promptly.
	type outcome struct {
		slot int
		res  wireResult
		err  error
	}
	results := make(chan outcome, len(jobs))
	var next atomic.Int64
	workers := s.cfg.Parallel
	if workers <= 0 {
		workers = sim.DefaultWorkers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for wkr := 0; wkr < workers; wkr++ {
		go func() {
			for {
				slot := int(next.Add(1)) - 1
				if slot >= len(jobs) {
					return
				}
				j := jobs[slot]
				// The batch already holds the admission slot, so each job
				// fetches with no admit hook; the store and singleflight
				// still apply, shared with /v1/simulate.
				res, _, err := s.fetch(ctx, simulateStoreKey(j.key, true), nil,
					func() ([]byte, error) { return s.simulateBody(ctx, j.resolved, j.program, true) })
				results <- outcome{slot: slot, res: res, err: err}
			}
		}()
	}

	emitted := make([]bool, len(jobs))
	for done := 0; done < len(jobs); done++ {
		select {
		case o := <-results:
			emitted[o.slot] = true
			j := jobs[o.slot]
			for _, idx := range j.indexes {
				if o.err != nil {
					emit(&BatchRecord{Index: idx, SpecKey: j.key, Status: "error", Error: o.err.Error()})
					continue
				}
				// The stored body is indented JSON (newlines included);
				// compact it onto the record's single NDJSON line.
				var body bytes.Buffer
				if err := json.Compact(&body, o.res.body); err != nil {
					emit(&BatchRecord{Index: idx, SpecKey: j.key, Status: "error", Error: "render: " + err.Error()})
					continue
				}
				emit(&BatchRecord{Index: idx, SpecKey: j.key, Status: "ok", Body: body.Bytes()})
			}
		case <-ctx.Done():
			// The deadline (or client) killed the batch: answer every
			// not-yet-emitted entry with the context error so the record
			// count always matches the request, then stop. The workers die
			// on their own — their remaining fetches fail instantly.
			for slot, j := range jobs {
				if emitted[slot] {
					continue
				}
				for _, idx := range j.indexes {
					emit(&BatchRecord{Index: idx, SpecKey: j.key, Status: "error", Error: ctx.Err().Error()})
				}
			}
			setOutcome(r.Context(), "error")
			return
		}
	}
	setOutcome(r.Context(), "ok")
}
