package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"didt/internal/telemetry"
)

// Server-Sent Events for POST /v1/sweep?progress=sse: the client sees
// per-experiment `experiment` events while the sweep runs, then one
// `result` event whose data carries the complete rendered output — the
// exact bytes a non-streaming request returns, JSON-encoded so the framing
// cannot disturb them. Errors mid-stream arrive as an `error` event
// holding the standard envelope (the HTTP status is already 200 by then).
//
// The nil *sseStream is a valid no-op: non-streaming requests call the
// same event methods and nothing happens, keeping handleSweep's loop free
// of mode branches.

type sseStream struct {
	w http.ResponseWriter
	f http.Flusher
}

// newSSEStream switches the response to the event stream (the headers and
// status go out immediately, so callers must have finished all error
// checks that deserve a real status code).
func newSSEStream(w http.ResponseWriter) (*sseStream, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, errors.New("response writer does not support streaming")
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseStream{w: w, f: f}, nil
}

// emit writes one named event with a JSON data payload; nil-safe no-op.
func (s *sseStream) emit(event string, v interface{}) {
	if s == nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, data)
	s.f.Flush()
}

// sseExperiment is the data payload of `experiment` events.
type sseExperiment struct {
	Experiment string  `json:"experiment"`
	State      string  `json:"state"` // start | done
	Index      int     `json:"index"`
	Total      int     `json:"total"`
	DurationMS float64 `json:"duration_ms,omitempty"`
}

func (s *sseStream) experimentEvent(id, state string, index, total int, durMS float64) {
	s.emit("experiment", sseExperiment{
		Experiment: id, State: state, Index: index, Total: total, DurationMS: durMS,
	})
}

// errorEvent delivers the standard envelope as an `error` event; the
// stream ends here.
func (s *sseStream) errorEvent(r *http.Request, err error) {
	code := codeInternal
	if errors.Is(err, context.DeadlineExceeded) {
		code = codeTimeout
	}
	s.emit("error", errorEnvelope{
		Error:   "didtd: run failed: " + err.Error(),
		Code:    code,
		TraceID: telemetry.TraceIDFromContext(r.Context()),
	})
}

// sseResult is the data payload of the final `result` event. Body holds
// the full rendered output verbatim; decoding the JSON string yields bytes
// identical to the non-streaming response.
type sseResult struct {
	Experiments []string `json:"experiments"`
	Body        string   `json:"body"`
}

func (s *sseStream) resultEvent(body []byte, ids []string) {
	s.emit("result", sseResult{Experiments: ids, Body: string(body)})
}
