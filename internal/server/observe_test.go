package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"didt/internal/telemetry"
)

// getBody fetches a URL and returns status + body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.String()
}

// TestErrorEnvelope is the table-driven shape check for the unified error
// envelope: every 4xx/5xx rejection path answers {error, code, trace_id}.
func TestErrorEnvelope(t *testing.T) {
	// Draining needs its own server; the rest share one.
	_, ts := newTestServer(t, Config{})
	drainSrv, drainTS := newTestServer(t, Config{})
	drainSrv.BeginShutdown()

	// Overflow: occupy the only run slot, fill the one-deep queue, then
	// probe. Reuses the gate hooks the admission tests rely on.
	ovSrv := New(Config{MaxConcurrent: 1, QueueDepth: 1, Registry: telemetry.NewRegistry()})
	started := make(chan struct{}, 2)
	gate := make(chan struct{})
	ovSrv.testRunStarted = started
	ovSrv.testRunGate = gate
	ovTS := httptest.NewServer(ovSrv.Handler())
	t.Cleanup(ovTS.Close)
	// Three distinct bodies: identical ones would coalesce onto one flight
	// instead of filling the admission queue.
	done := make(chan struct{}, 2)
	go func() {
		postJSON(t, ovTS.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":200}`)
		done <- struct{}{}
	}()
	<-started
	go func() {
		postJSON(t, ovTS.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":201}`)
		done <- struct{}{}
	}()
	waitForGauge(t, ovSrv.cfg.Registry, "didtd.admission.queue_depth", 1)

	cases := []struct {
		name   string
		url    string
		body   string
		status int
		code   string
	}{
		{"malformed json", ts.URL + "/v1/sweep", `{"run":`, http.StatusBadRequest, "bad_request"},
		{"unknown field", ts.URL + "/v1/sweep", `{"experiment":"x"}`, http.StatusBadRequest, "bad_request"},
		{"unknown experiment", ts.URL + "/v1/sweep", `{"run":"fig999"}`, http.StatusBadRequest, "bad_request"},
		{"oversized body", ts.URL + "/v1/sweep", `{"benchmarks":["` + strings.Repeat("x", 1<<20) + `"]}`, http.StatusRequestEntityTooLarge, "payload_too_large"},
		{"bad progress mode", ts.URL + "/v1/sweep", `{"run":"table2","progress":"websocket"}`, http.StatusBadRequest, "bad_request"},
		{"trailing json document", ts.URL + "/v1/sweep", `{"run":"table2"}{"run":"fig2"}`, http.StatusBadRequest, "bad_request"},
		{"trailing garbage", ts.URL + "/v1/simulate", `{"workload":"stressmark"} extra`, http.StatusBadRequest, "bad_request"},
		{"trailing garbage on batch", ts.URL + "/v1/batch", `{"specs":[]}]`, http.StatusBadRequest, "bad_request"},
		{"overflow", ovTS.URL + "/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":202}`, http.StatusTooManyRequests, "overflow"},
		{"draining", drainTS.URL + "/v1/sweep", `{"run":"table2"}`, http.StatusServiceUnavailable, "draining"},
		{"bad metrics format", "", "", http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		var status int
		var body string
		if tc.name == "bad metrics format" {
			status, body = getBody(t, ts.URL+"/metrics?format=xml")
		} else {
			status, body = postJSON(t, tc.url, tc.body)
		}
		if status != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, status, tc.status, body)
			continue
		}
		var env struct {
			Error   string `json:"error"`
			Code    string `json:"code"`
			TraceID string `json:"trace_id"`
		}
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Errorf("%s: body is not an error envelope: %v\n%s", tc.name, err, body)
			continue
		}
		if env.Error == "" || env.Code != tc.code {
			t.Errorf("%s: envelope {error:%q, code:%q}, want code %q", tc.name, env.Error, env.Code, tc.code)
		}
		if env.TraceID == "" {
			t.Errorf("%s: envelope carries no trace_id", tc.name)
		}
	}

	close(gate)
	<-started
	<-done
	<-done
}

// TestHealthzFields: the liveness endpoint reports build identity and
// admission sizing alongside the original status fields.
func TestHealthzFields(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 3, QueueDepth: 5})
	status, body := getBody(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var h struct {
		Status        string `json:"status"`
		Version       string `json:"version"`
		GoVersion     string `json:"go_version"`
		Active        *int   `json:"active_requests"`
		Queued        *int   `json:"queued_requests"`
		MaxConcurrent int    `json:"max_concurrent"`
		QueueDepth    int    `json:"queue_depth"`
		UptimeS       *int64 `json:"uptime_s"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v\n%s", err, body)
	}
	if h.Status != "ok" {
		t.Errorf("status %q, want ok", h.Status)
	}
	if h.Version == "" || h.GoVersion == "" {
		t.Errorf("missing build identity: version=%q go_version=%q", h.Version, h.GoVersion)
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version %q does not look like a toolchain version", h.GoVersion)
	}
	if h.MaxConcurrent != 3 || h.QueueDepth != 5 {
		t.Errorf("admission sizing %d/%d, want 3/5", h.MaxConcurrent, h.QueueDepth)
	}
	if h.Active == nil || h.Queued == nil || h.UptimeS == nil {
		t.Errorf("missing gauge fields: %s", body)
	}
	// queued_requests is clamped at zero: the two channel reads behind it
	// can transiently disagree, and the JSON must never report a negative
	// queue to a dashboard.
	if h.Queued != nil && *h.Queued < 0 {
		t.Errorf("queued_requests = %d, want >= 0", *h.Queued)
	}
	// Pin the exact JSON shape: a renamed or dropped field is an API break
	// for health checkers, not a refactor.
	var shape map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &shape); err != nil {
		t.Fatal(err)
	}
	want := []string{"status", "version", "go_version", "active_requests",
		"queued_requests", "max_concurrent", "queue_depth", "uptime_s"}
	if len(shape) != len(want) {
		t.Errorf("healthz has %d fields, want %d: %s", len(shape), len(want), body)
	}
	for _, k := range want {
		if _, ok := shape[k]; !ok {
			t.Errorf("healthz misses field %q: %s", k, body)
		}
	}
}

// TestMetricsPrometheusFormat: ?format=prometheus serves a parseable text
// exposition including the request-latency and queue-wait histograms once
// traffic has flowed; the default JSON snapshot stays the default.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Drive one work request so the lazily-created histograms exist.
	code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":200}`)
	if code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type %q misses exposition version", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		"# TYPE didtd_request_duration_ms histogram",
		"didtd_request_duration_ms_bucket{le=\"+Inf\"}",
		"# TYPE didtd_admission_queue_wait_ms histogram",
		"didtd_admission_queue_wait_ms_count",
		"# TYPE didtd_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition misses %q:\n%s", want, text)
		}
	}
	// Every line must be a comment or a sample (cheap grammar check).
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i <= 0 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	// Default stays JSON and carries the same data.
	status, jsonBody := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatal(status)
	}
	var snap map[string]interface{}
	if err := json.Unmarshal([]byte(jsonBody), &snap); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}
}

// TestMetricsFreshServerUnchanged pins the lazy-creation contract: a
// server that has served no work requests exposes exactly the metrics the
// pre-tracing build did — the new histograms appear only after traffic.
func TestMetricsFreshServerUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := getBody(t, ts.URL+"/metrics")
	var snap struct {
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Histograms) != 0 {
		t.Errorf("fresh server already exposes histograms: %v", snap.Histograms)
	}
	// The registry carries exactly the counters/gauges New() registers.
	var full struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal([]byte(body), &full); err != nil {
		t.Fatal(err)
	}
	wantCounters := []string{"didtd.requests_total", "didtd.rejected_total", "didtd.unavailable_total"}
	for _, c := range wantCounters {
		if _, ok := full.Counters[c]; !ok {
			t.Errorf("fresh server misses counter %s", c)
		}
	}
	// The /metrics scrape itself must not have created request histograms
	// mid-request: scrape again and compare counter/gauge/histogram keys.
	_, body2 := getBody(t, ts.URL+"/metrics")
	var snap2 struct {
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body2), &snap2); err != nil {
		t.Fatal(err)
	}
	// The first scrape's own latency observation creates the request
	// histogram, so by the second scrape it exists — assert it is the ONLY
	// addition, i.e. laziness bounded the damage to post-traffic state.
	for name := range snap2.Histograms {
		if name != "didtd.request_duration_ms" {
			t.Errorf("unexpected histogram on idle server: %s", name)
		}
	}
}

// logLine is one decoded access-log record.
type logLine struct {
	Msg         string  `json:"msg"`
	Level       string  `json:"level"`
	Method      string  `json:"method"`
	Path        string  `json:"path"`
	Status      int     `json:"status"`
	Bytes       int64   `json:"bytes"`
	DurationMS  float64 `json:"duration_ms"`
	TraceID     string  `json:"trace_id"`
	SpecKey     string  `json:"spec_key"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	Outcome     string  `json:"outcome"`
}

// TestAccessLogAndSpanCorrelation is the acceptance check for trace
// propagation: the request log line carries a trace_id that matches a
// root http.request span in the /v1/spans JSONL export, and the log
// carries spec_key, queue_wait_ms and outcome.
func TestAccessLogAndSpanCorrelation(t *testing.T) {
	var logBuf bytes.Buffer
	tracer := telemetry.NewTracer(0)
	_, ts := newTestServer(t, Config{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
		Spans:  tracer,
	})
	code, body := postJSON(t, ts.URL+"/v1/simulate", `{"workload":"stressmark","cycles":20000,"iterations":200}`)
	if code != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", code, body)
	}

	var line *logLine
	for _, raw := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var l logLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, raw)
		}
		if l.Msg == "request" && l.Path == "/v1/simulate" {
			line = &l
			break
		}
	}
	if line == nil {
		t.Fatalf("no access log line for /v1/simulate:\n%s", logBuf.String())
	}
	if line.Level != "INFO" {
		t.Errorf("work request logged at %s, want INFO", line.Level)
	}
	if line.Method != "POST" || line.Status != http.StatusOK || line.Bytes == 0 {
		t.Errorf("incomplete access log record: %+v", line)
	}
	if line.TraceID == "" || line.SpecKey == "" || line.Outcome != "ok" {
		t.Errorf("missing correlation fields: %+v", line)
	}

	// The trace id must resolve to a root span in the span export.
	status, spansBody := getBody(t, ts.URL+"/v1/spans")
	if status != http.StatusOK {
		t.Fatal(status)
	}
	found := false
	sc := bufio.NewScanner(strings.NewReader(spansBody))
	for sc.Scan() {
		var rec telemetry.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("span export line is not JSON: %v\n%s", err, sc.Text())
		}
		if rec.TraceID == line.TraceID && rec.ParentID == "" && rec.Name == "http.request" {
			found = true
		}
	}
	if !found {
		t.Errorf("no root http.request span with trace_id %s in export:\n%s", line.TraceID, spansBody)
	}

	// The same trace must include sim.job children (context propagation
	// reached the sweep engine).
	if !strings.Contains(spansBody, `"name":"sim.job"`) {
		t.Errorf("span export misses sim.job spans:\n%s", spansBody)
	}

	// Chrome export variant parses as JSON.
	status, chromeBody := getBody(t, ts.URL+"/v1/spans?format=chrome")
	if status != http.StatusOK {
		t.Fatal(status)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(chromeBody), &chrome); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome export is empty")
	}
}

// TestErrorEnvelopeTraceMatchesLog: a rejected request's envelope
// trace_id equals the trace_id its access-log line carries.
func TestErrorEnvelopeTraceMatchesLog(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	code, body := postJSON(t, ts.URL+"/v1/sweep", `{"run":"fig999"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", code, body)
	}
	var env struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil || env.TraceID == "" {
		t.Fatalf("no trace_id in envelope: %v %s", err, body)
	}
	if !strings.Contains(logBuf.String(), env.TraceID) {
		t.Errorf("access log does not mention envelope trace_id %s:\n%s", env.TraceID, logBuf.String())
	}
}
