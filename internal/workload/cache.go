package workload

import (
	"didt/internal/isa"

	"didt/internal/sim"
	"didt/internal/telemetry"
)

// Program generation is fully deterministic in its parameters, and the
// experiment sweeps regenerate the same handful of programs hundreds of
// times (every delay/impedance/noise point of a study re-runs the same
// benchmark). These caches memoize the generated isa.Program per profile,
// keyed on the parameter fingerprint — the same sub-hash the workload
// section contributes to spec.RunSpec.Key, so spec-equal runs share one
// program instance. Cached programs are shared across callers —
// isa.Program is read-only after construction (the CPU only ever indexes
// into it), so concurrent simulations can safely execute one instance.
var (
	programCache    = sim.NewCache[string, isa.Program](256)
	stressmarkCache = sim.NewCache[string, isa.Program](128)
)

func init() {
	programCache.RegisterMetrics(telemetry.Default(), "cache.workload_program")
	stressmarkCache.RegisterMetrics(telemetry.Default(), "cache.workload_stressmark")
	sim.RegisterCacheCapacity("workload_program", 256, programCache.SetCapacity)
	sim.RegisterCacheCapacity("workload_stressmark", 128, stressmarkCache.SetCapacity)
}

// ProgramCacheStats reports the benchmark-program cache's effectiveness.
func ProgramCacheStats() sim.CacheStats { return programCache.Stats() }

// StressmarkCacheStats reports the stressmark-program cache's
// effectiveness.
func StressmarkCacheStats() sim.CacheStats { return stressmarkCache.Stats() }

// ResetProgramCache empties both program caches (benchmarks use it to
// measure cold-start cost).
func ResetProgramCache() {
	programCache.Reset()
	stressmarkCache.Reset()
}

// GenerateCached returns the (shared, read-only) program for a profile,
// generating it at most once per distinct profile.
func GenerateCached(p Profile) isa.Program {
	prog, _ := programCache.Get(sim.Fingerprint(p), func() (isa.Program, error) {
		return Generate(p), nil
	})
	return prog
}

// StressmarkCached returns the (shared, read-only) stressmark program for
// the given parameters, generating it at most once per distinct parameter
// set.
func StressmarkCached(p StressmarkParams) isa.Program {
	prog, _ := stressmarkCache.Get(sim.Fingerprint(p), func() (isa.Program, error) {
		return Stressmark(p), nil
	})
	return prog
}
