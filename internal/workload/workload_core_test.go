// Closed-loop workload properties. These tests run programs through
// internal/core, which sits above workload in the dependency order, so they
// live in the external test package (workload itself must stay importable
// by spec and core).
package workload_test

import (
	"testing"

	"didt/internal/core"
	"didt/internal/isa"
	"didt/internal/spec"
	"didt/internal/workload"
)

func observeOptions(impedancePct float64, maxCycles, warmup uint64) core.Options {
	var s spec.RunSpec
	s.PDN.ImpedancePct = impedancePct
	s.Budget.MaxCycles = maxCycles
	s.Budget.WarmupCycles = warmup
	return core.Options{Spec: s}
}

func TestStableVsVariableVoltageSpread(t *testing.T) {
	// The paper's Figure 10 contrast: ammp's voltage is exceptionally
	// stable while galgel varies across a wide range.
	spread := func(name string) float64 {
		p, err := workload.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(workload.Generate(p), observeOptions(1, 120000, 40000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxV - res.MinV
	}
	stable := spread("mcf")
	variable := spread("galgel")
	if variable <= stable {
		t.Errorf("galgel spread %.1fmV should exceed mcf %.1fmV", variable*1e3, stable*1e3)
	}
}

func TestStressmarkBeatsSPEC(t *testing.T) {
	// Figure 9 / Table 2 premise: the stressmark's swing dwarfs ordinary
	// workloads.
	run := func(prog isa.Program) float64 {
		sys, err := core.NewSystem(prog, observeOptions(2, 120000, 40000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		lo := res.VNominal - res.MinV
		if hi := res.MaxV - res.VNominal; hi > lo {
			return hi
		}
		return lo
	}
	p, _ := workload.ProfileByName("gzip")
	p.Iterations = 2000
	specDev := run(workload.Generate(p))
	stressDev := run(workload.Stressmark(workload.StressmarkParams{Iterations: 2000}))
	if stressDev <= specDev {
		t.Errorf("stressmark dev %.1fmV should exceed gzip %.1fmV", stressDev*1e3, specDev*1e3)
	}
}

func TestSmoothedBurstReducesSwing(t *testing.T) {
	// The related-work software mitigation: same instruction count, chained
	// scheduling, smaller voltage swing.
	dev := func(smoothed bool) float64 {
		prog := workload.Stressmark(workload.StressmarkParams{Iterations: 1200, SmoothedBurst: smoothed})
		sys, err := core.NewSystem(prog, observeOptions(2, 150000, 30000))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run()
		if err != nil {
			t.Fatal(err)
		}
		lo := res.VNominal - res.MinV
		if hi := res.MaxV - res.VNominal; hi > lo {
			return hi
		}
		return lo
	}
	base, smooth := dev(false), dev(true)
	if smooth >= base {
		t.Errorf("smoothed schedule dev %.1fmV should undercut baseline %.1fmV", smooth*1e3, base*1e3)
	}
}
