package workload

import (
	"strings"
	"testing"

	"didt/internal/cpu"
	"didt/internal/isa"
)

func TestStressmarkBuildsAndValidates(t *testing.T) {
	p := Stressmark(StressmarkParams{})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p) < 50 {
		t.Errorf("stressmark suspiciously small: %d instrs", len(p))
	}
}

func TestStressmarkRunsToCompletion(t *testing.T) {
	prog := Stressmark(StressmarkParams{Iterations: 50})
	c, err := cpu.New(cpu.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000 && !c.Done(); i++ {
		c.Step()
	}
	if !c.Done() {
		t.Fatal("stressmark did not halt")
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

func TestStressmarkPhases(t *testing.T) {
	// The defining property: alternating quiet (no issue) and burst
	// (wide issue) phases. Measure the issue-rate distribution over a warm
	// window: it must be strongly bimodal — many near-zero cycles AND many
	// wide cycles.
	prog := Stressmark(StressmarkParams{Iterations: 400})
	c, err := cpu.New(cpu.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	idle, wide, total := 0, 0, 0
	for i := 0; i < 40000 && !c.Done(); i++ {
		act, _ := c.Step()
		if i < 15000 {
			continue // cold start
		}
		total++
		if act.Issued == 0 {
			idle++
		}
		if act.Issued >= 6 {
			wide++
		}
	}
	if total == 0 {
		t.Fatal("no measured cycles")
	}
	if frac := float64(idle) / float64(total); frac < 0.25 {
		t.Errorf("quiet fraction %.2f too small for a dI/dt stressmark", frac)
	}
	if frac := float64(wide) / float64(total); frac < 0.10 {
		t.Errorf("wide-issue fraction %.2f too small for a dI/dt stressmark", frac)
	}
}

func TestStressmarkPeriodNearResonance(t *testing.T) {
	prog := Stressmark(StressmarkParams{Iterations: 500})
	c, err := cpu.New(cpu.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < 300000 && !c.Done(); i++ {
		c.Step()
	}
	cycles = c.Stats().Cycles
	perIter := float64(cycles) / 500
	// 3 GHz / 50 MHz = 60-cycle resonant period; tuned loop sits nearby.
	if perIter < 40 || perIter > 100 {
		t.Errorf("loop period %.1f cycles, want near the 60-cycle resonance", perIter)
	}
}

func TestStressmarkAssemblyRendering(t *testing.T) {
	asm := StressmarkAssembly(StressmarkParams{Iterations: 10})
	for _, want := range []string{"fdiv", "fld", "cmovnz", "bnez"} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly missing %q", want)
		}
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("got %d profiles, want 26 (SPEC2000)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, name := range ChallengingEight() {
		if !seen[name] {
			t.Errorf("challenging-eight benchmark %q not in profiles", name)
		}
	}
	if len(ChallengingEight()) != 8 {
		t.Error("challenging set must have 8 entries")
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatalf("ProfileByName(swim): %v %+v", err, p)
	}
	if _, err := ProfileByName("nonesuch"); err == nil {
		t.Error("want error for unknown name")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("%d names", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := Generate(p)
	b := Generate(p)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
}

func TestAllProfilesBuildAndValidate(t *testing.T) {
	for _, p := range Profiles() {
		p.Iterations = 5
		prog := Generate(p)
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfilesExecuteCorrectly(t *testing.T) {
	// Spot-check a few profiles end to end on the core.
	for _, name := range []string{"gcc", "swim", "mcf", "crafty"} {
		p, _ := ProfileByName(name)
		p.Iterations = 30
		c, err := cpu.New(cpu.Config{}, Generate(p))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < 500000 && !c.Done(); i++ {
			c.Step()
		}
		if !c.Done() || c.Err() != nil {
			t.Errorf("%s: did not complete cleanly (err=%v)", name, c.Err())
		}
	}
}

func TestSmoothedBurstSameInstructionMix(t *testing.T) {
	a := Stressmark(StressmarkParams{Iterations: 10})
	b := Stressmark(StressmarkParams{Iterations: 10, SmoothedBurst: true})
	if len(a) != len(b) {
		t.Errorf("smoothing changed instruction count: %d vs %d", len(a), len(b))
	}
	countOps := func(p isa.Program) map[isa.Op]int {
		m := map[isa.Op]int{}
		for _, in := range p {
			m[in.Op]++
		}
		return m
	}
	ca, cb := countOps(a), countOps(b)
	for op, n := range ca {
		if cb[op] != n {
			t.Errorf("op %v count changed: %d vs %d", op, n, cb[op])
		}
	}
}
