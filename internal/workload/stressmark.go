// Package workload generates the instruction streams the paper evaluates:
// the hand-crafted dI/dt stressmark of Section 3.2 and synthetic stand-ins
// for the 26 SPEC2000 benchmarks of Section 3.3.
//
// The stressmark follows the paper's Figure 8 recipe exactly: a loop whose
// body opens with chained floating-point divides (long stalls, minimal
// current) and closes with a broad burst of operations that all depend on
// the divide result (store the result, re-load it, then fan out), so the
// machine swings between near-idle and full-width issue with a loop period
// matched to the package's resonant period. Dependences carry across
// iterations through memory (the burst stores what the next iteration's
// load reads), preventing the out-of-order window from smearing the
// phases together.
package workload

import (
	"didt/internal/isa"
)

// StressmarkParams shapes the loop. The defaults approximate the paper's
// 60-cycle resonant period at 3 GHz / 50 MHz; TuneStressmark searches the
// neighborhood for the deepest voltage swing on a specific system.
type StressmarkParams struct {
	Iterations  int // loop trip count; default 2000
	ChainedDivs int // chained FDIVs forming the quiet phase; default 3
	BurstALU    int // parallel integer ops in the burst; default 80
	BurstStores int // parallel stores in the burst; default 40
	BurstFPAdd  int // parallel fp adds in the burst; default 32
	BurstFP     int // parallel fp multiplies (pipelined) in the burst; default 12
	BurstMul    int // parallel integer multiplies in the burst; default 6
	// Occupying divides: issued once at burst start, they hold a
	// (non-pipelined) multiply/divide unit busy for many cycles at the
	// cost of a single issue slot. Integer divides fit the burst length;
	// floating-point ones are off by default because they contend with the
	// quiet phase's critical divide chain, and integer ones because their
	// in-order commit delays the burst's store retirement into the quiet
	// phase. Negative values disable.
	BurstFDivs int // default off
	BurstIDivs int // default off

	// SmoothedBurst applies the software mitigation of the related work
	// (Toburen's dI/dt-aware instruction scheduling; Pant et al.'s gradual
	// power stepping): the burst's operations are re-scheduled into short
	// dependent chains so issue width — and therefore current — steps up
	// gradually instead of jumping rail to rail. The same instructions
	// execute; only their dependence structure changes.
	SmoothedBurst bool
}

func (p StressmarkParams) withDefaults() StressmarkParams {
	if p.Iterations == 0 {
		p.Iterations = 2000
	}
	if p.ChainedDivs == 0 {
		p.ChainedDivs = 3
	}
	if p.BurstALU == 0 {
		p.BurstALU = 80
	}
	if p.BurstStores == 0 {
		p.BurstStores = 40
	}
	if p.BurstFPAdd == 0 {
		p.BurstFPAdd = 32
	}
	if p.BurstFP == 0 {
		p.BurstFP = 12
	}
	if p.BurstMul == 0 {
		p.BurstMul = 6
	}
	if p.BurstFDivs == 0 {
		p.BurstFDivs = -1
	}
	if p.BurstIDivs == 0 {
		p.BurstIDivs = -1 // they delay store commits into the quiet phase
	}
	return p
}

// Stressmark builds the dI/dt stressmark program.
//
// Register plan: r4 = primary buffer, r5 = scatter buffer, r9 = trip
// count; f2 = divisor; burst results land in r10..r25 and f10..f17 (all
// dead values, like the paper's stores through $31).
func Stressmark(p StressmarkParams) isa.Program {
	p = p.withDefaults()
	b := isa.NewBuilder()

	const (
		bufA = 1 << 16
		bufB = 1 << 17
	)
	b.LdI(4, bufA)
	b.LdI(5, bufB)
	b.LdI(9, int64(p.Iterations))
	// Operand chosen near 1.0 so chained divides neither overflow nor
	// denormalize over millions of iterations (maximum mantissa activity,
	// as the paper notes operands are picked for transition activity).
	b.FLdI(2, 1.0000001192092896)
	b.FLdI(1, 1.5707963267948966)
	b.FSt(1, 4, 0) // seed the cross-iteration memory dependence

	b.Label("loop")
	// ---- Quiet phase: serialized long-latency divides. The load of f1
	// depends on the previous iteration's store, so the window cannot
	// start this iteration's burst early.
	b.FLd(1, 4, 0)
	prev := uint8(1)
	for i := 0; i < p.ChainedDivs; i++ {
		b.FDiv(3, prev, 2)
		prev = 3
	}
	// ---- Burst phase: everything below depends (transitively) on f3.
	b.FSt(3, 4, 8)
	b.Ld(7, 4, 8) // reload the bits as an integer: the paper's ldq
	b.CMovNZ(3+0, 7, isa.ZeroReg)
	// Store the result back for the next iteration's fld (cross-iteration
	// chain). Store the FP value so the next divide chain stays sane.
	b.FSt(3, 4, 0)
	// Occupying divides first (oldest = issue priority): two dead FDIVs
	// saturate the FPMult units and two dead DIVs the IntMult units for
	// the burst's duration, each costing one issue slot.
	for i := 0; i < p.BurstFDivs; i++ {
		b.FDiv(uint8(27+i%2), 3, 2)
	}
	for i := 0; i < p.BurstIDivs; i++ {
		b.Div(uint8(27+i%2), 7, 4)
	}
	// Interleaved fan-out: mixing op kinds in program order keeps the
	// oldest-first issue stage feeding every unit class each cycle. All
	// operands trace back to r7/f3 so nothing starts before the divide
	// chain resolves.
	nALU, nSt, nFA, nMul, nFM := p.BurstALU, p.BurstStores, max0(p.BurstFPAdd), max0(p.BurstMul), max0(p.BurstFP)
	// Smoothed scheduling: each op joins a rotating dependence chain so at
	// most a few operations are ready per cycle and the current ramp is
	// gradual. chainReg tracks the tail of each chain.
	var chainReg [4]uint8
	for i := range chainReg {
		chainReg[i] = 7 // seeded from the burst trigger
	}
	smoothSrc := func(i int) uint8 {
		if !p.SmoothedBurst {
			return 7
		}
		return chainReg[i%len(chainReg)]
	}
	smoothDst := func(i int, dst uint8) uint8 {
		if p.SmoothedBurst {
			chainReg[i%len(chainReg)] = dst
		}
		return dst
	}
	for i := 0; nALU+nSt+nFA+nMul+nFM > 0; i++ {
		if nALU > 0 {
			dst := smoothDst(i, uint8(10+i%16))
			src := smoothSrc(i)
			switch i % 4 {
			case 0:
				b.Add(dst, src, uint8(10+(i+5)%16))
			case 1:
				b.Xor(dst, src, uint8(10+(i+9)%16))
			case 2:
				b.Sub(dst, src, uint8(10+(i+3)%16))
			default:
				b.Or(dst, src, uint8(10+(i+7)%16))
			}
			nALU--
			if nALU > 0 && i%2 == 0 { // two ALU ops per round
				b.And(uint8(10+(i+1)%16), src, uint8(10+(i+11)%16))
				nALU--
			}
		}
		if nSt > 0 {
			b.St(smoothSrc(i+1), 5, int64(8*(nSt-1)))
			nSt--
		}
		if nFA > 0 {
			b.FAdd(uint8(10+i%8), 3, uint8(10+(i+3)%8))
			nFA--
		}
		if nMul > 0 && i%4 == 0 {
			b.Mul(26, 7, uint8(10+i%16))
			nMul--
		}
		if nFM > 0 && i%2 == 0 {
			b.FMul(uint8(18+i%8), 3, 2)
			nFM--
		}
	}
	b.AddI(9, 9, -1)
	b.BneZ(9, "loop")
	b.Halt()
	return b.MustBuild()
}

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// StressmarkAssembly renders the stressmark as assembly text, the form the
// paper presents in Figure 8.
func StressmarkAssembly(p StressmarkParams) string {
	return isa.Disassemble(Stressmark(p))
}
