package workload

import (
	"fmt"
	"sort"

	"didt/internal/isa"
)

// Profile parameterizes one synthetic benchmark. The 26 named profiles in
// Profiles() stand in for SPEC2000: the paper uses SPEC only as a source of
// current variability (cache misses and fills, branch mispredictions, and
// natural variances in ILP — Section 3), so each profile is tuned to
// reproduce the corresponding benchmark's qualitative microarchitectural
// signature rather than its computation.
type Profile struct {
	Name string

	// Busy block: a burst of parallel work per loop iteration.
	BusyOps   int     // instructions in the busy block
	FPFrac    float64 // fraction of busy ALU work that is floating point
	MemFrac   float64 // fraction of busy ops that touch memory
	StoreFrac float64 // of those, fraction that are stores

	// Quiet block: the stall generator between bursts.
	QuietDivs  int // chained FDIVs (fp pipelines stall)
	QuietLoads int // serialized pointer-chase loads (memory stall)

	// Memory behavior.
	WorkingSetKB int // pointer-chase footprint; > cache sizes means misses
	StrideBytes  int // busy-block load/store stride

	// Branch behavior.
	BranchBlock   int     // micro-branches per iteration
	BranchEntropy float64 // fraction of those that are LCG-random (mispredict)

	Iterations int // loop trip count; 0 takes the generator default
}

// Generate builds the benchmark program for a profile. Generation is fully
// deterministic.
func Generate(p Profile) isa.Program {
	if p.Iterations == 0 {
		p.Iterations = 3000
	}
	if p.WorkingSetKB <= 0 {
		p.WorkingSetKB = 16
	}
	if p.StrideBytes <= 0 {
		p.StrideBytes = 8
	}
	wsBytes := int64(nextPow2(p.WorkingSetKB * 1024))

	const (
		chaseBase = 1 << 22 // pointer-chase region
		dataBase  = 1 << 21 // busy-block data region
	)
	// Register plan:
	//  r1  busy data pointer          r2  busy stride
	//  r3  busy wrap mask             r4  data base
	//  r5  LCG multiplier             r6  LCG state
	//  r7  const 1                    r8  scratch (branch bit)
	//  r9  loop counter               r10..r17 busy int results
	//  r20 chase pointer              r21 chase scratch
	//  r22 chase base                 r23 prologue counter
	//  r24 prologue cursor            r25 prologue next
	//  f2,f3 constants                f4 quiet-div chain
	//  f10..f17 busy fp results
	b := isa.NewBuilder()
	b.LdI(4, dataBase)
	b.LdI(1, dataBase)
	b.LdI(2, int64(p.StrideBytes))
	b.LdI(3, wsBytes-1)
	b.LdI(5, 6364136223846793005)
	b.LdI(6, int64(hashName(p.Name))|1)
	b.LdI(7, 1)
	b.LdI(9, int64(p.Iterations))
	b.FLdI(2, 1.0000001192092896)
	b.FLdI(3, 0.9999998807907104)
	b.FLdI(4, 1.2345678901234567)

	// Pointer-chase prologue: link chaseBase into a strided cycle so that
	// "ld r20, 0(r20)" marches through WorkingSetKB of memory. A stride of
	// several cache lines defeats spatial locality; the entry count is
	// capped so the prologue stays a small fraction of the run.
	chaseStride := int64(nextPow2(max(int(wsBytes/2048), max(p.StrideBytes, 256))))
	chaseEntries := wsBytes / chaseStride
	if chaseEntries < 1 {
		chaseEntries = 1
	}
	b.LdI(22, chaseBase)
	b.LdI(24, chaseBase)
	b.LdI(23, chaseEntries)
	b.Label("chain")
	b.AddI(25, 24, chaseStride)
	b.Sub(21, 25, 22)
	b.And(21, 21, 3) // wrap offset
	b.Add(25, 22, 21)
	b.St(25, 24, 0)
	b.AddI(24, 24, chaseStride)
	b.AddI(23, 23, -1)
	b.BneZ(23, "chain")
	b.LdI(20, chaseBase)

	rng := hashName(p.Name)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(n))
	}

	// Phase coupling: when the profile has a divide-stall phase, the busy
	// block reads r26, which the quiet block refreshes from the divide
	// chain through memory (the stressmark's trick). That forces the
	// machine to alternate between stall and burst instead of letting the
	// out-of-order window smear the phases together.
	phaseSrc := uint8(7)
	if p.QuietDivs > 0 {
		phaseSrc = 26
		b.LdI(26, 1)
	}

	b.LdI(27, 15) // mask register for phase-modulation bits

	b.Label("loop")
	// One LCG step per iteration drives runtime phase modulation (and the
	// random branches below).
	b.Mul(6, 6, 5)
	b.AddI(6, 6, 1442695040888963407)

	// March the busy-block data pointer once per iteration (strided
	// streaming through the working set, wrapped to its footprint).
	b.Add(1, 1, 2)
	b.Sub(21, 1, 4)
	b.And(21, 21, 3)
	b.Add(1, 4, 21)

	// The body is split into sub-bodies with build-time-jittered sizes and
	// runtime-conditional quiet extensions. Real programs do not oscillate
	// at a single frequency; the jitter spreads the current spectrum so
	// deep resonant alignments are rare tail events, as in the paper's
	// Table 2 emergency frequencies.
	const subBodies = 3
	branchIdx := 0
	nRandom := int(float64(p.BranchBlock) * p.BranchEntropy)
	for sub := 0; sub < subBodies; sub++ {
		// ---- Busy block: interleaved, predominantly independent work.
		busyOps := p.BusyOps / subBodies
		busyOps = busyOps * (60 + next(80)) / 100 // +-40% jitter
		memBudget := int(float64(busyOps) * p.MemFrac)
		fpBudget := int(float64(busyOps-memBudget) * p.FPFrac)
		aluBudget := busyOps - memBudget - fpBudget
		for aluBudget+fpBudget+memBudget > 0 {
			switch {
			case aluBudget > 0 && (fpBudget+memBudget == 0 || next(3) == 0):
				dst := uint8(10 + next(8))
				// Only a third of the integer work couples to the stall
				// phase; the rest free-runs, so bursts are partial (real
				// programs never swing rail to rail).
				src := uint8(7)
				if next(4) == 0 {
					src = phaseSrc
				}
				switch next(4) {
				case 0:
					b.Add(dst, src, 2)
				case 1:
					b.Xor(dst, src, 7)
				case 2:
					b.Sub(dst, src, 2)
				default:
					b.Or(dst, uint8(10+next(8)), 7) // occasional short chain
				}
				aluBudget--
			case fpBudget > 0 && (memBudget == 0 || next(2) == 0):
				dst := uint8(10 + next(8))
				if next(4) == 0 {
					b.FMul(dst, 2, 3)
				} else if p.QuietDivs > 0 && next(8) == 0 {
					b.FAdd(dst, 4, 3) // couple a little fp work to the divide chain
				} else {
					b.FAdd(dst, 2, 3)
				}
				fpBudget--
			case memBudget > 0:
				if float64(next(100)) < p.StoreFrac*100 {
					b.St(uint8(10+next(8)), 1, int64(8*next(32)))
				} else {
					b.Ld(uint8(18+next(4)), 1, int64(8*next(32)))
				}
				memBudget--
			}
		}

		// ---- Branch block share: controlled predictability.
		for ; branchIdx < p.BranchBlock*(sub+1)/subBodies; branchIdx++ {
			skip := fmt.Sprintf("skip%d", branchIdx)
			if branchIdx < nRandom {
				// Coin flip from this iteration's LCG state.
				b.LdI(8, int64(20+3*branchIdx)%60)
				b.Emit(isa.Instr{Op: isa.SHR, Dst: 8, Src1: 6, Src2: 8})
				b.And(8, 8, 7)
				b.BeqZ(8, skip)
			} else {
				// Perfectly biased branch: predictable after warmup.
				b.BeqZ(isa.ZeroReg, skip)
			}
			b.Add(uint8(10+branchIdx%8), uint8(10+branchIdx%8), 7)
			b.Label(skip)
		}

		// ---- Quiet block share: stalls, each individually present with
		// probability 1/2 per iteration (distinct LCG bits). Real stall
		// behavior is data-dependent, not metronomic; the randomized duty
		// spreads the current spectrum so a deep resonant excursion needs a
		// rare run of aligned iterations — the tail events behind Table 2's
		// small emergency frequencies.
		divs := 2 * share(p.QuietDivs, sub, subBodies)
		loads := 2 * share(p.QuietLoads, sub, subBodies)
		bit := 8 + 11*sub
		for i := 0; i < divs; i++ {
			skip := fmt.Sprintf("qd%d_%d", sub, i)
			b.LdI(8, int64((bit+3*i)%60))
			b.Emit(isa.Instr{Op: isa.SHR, Dst: 8, Src1: 6, Src2: 8})
			b.And(8, 8, 7)
			b.BneZ(8, skip)
			b.FDiv(4, 4, 2)
			b.Label(skip)
		}
		for i := 0; i < loads; i += 2 {
			skip := fmt.Sprintf("ql%d_%d", sub, i)
			b.LdI(8, int64((bit+5+3*i)%60))
			b.Emit(isa.Instr{Op: isa.SHR, Dst: 8, Src1: 6, Src2: 8})
			b.And(8, 8, 7)
			b.BneZ(8, skip)
			b.Ld(20, 20, 0) // serialized chase; each step can miss
			if i+1 < loads {
				b.Ld(20, 20, 0)
			}
			b.Label(skip)
		}
	}
	if p.QuietDivs > 0 {
		// Publish the divide result for the next iteration's busy blocks:
		// store it and load it back as an integer (cross-file move through
		// memory, as in the stressmark).
		b.FSt(4, 4, 1024)
		b.Ld(26, 4, 1024)
	}

	b.AddI(9, 9, -1)
	b.BneZ(9, "loop")
	b.Halt()
	return b.MustBuild()
}

// share splits total across n chunks, front-loading remainders.
func share(total, idx, n int) int {
	base := total / n
	if idx < total%n {
		return base + 1
	}
	return base
}

func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Profiles returns the 26 synthetic SPEC2000 stand-ins keyed by name.
// Tunings target each benchmark's published microarchitectural signature:
// IPC class, cache behavior, branch behavior, and — the property the paper
// cares about — how much mid-frequency current variability it produces
// (Figure 10's spread, Table 2's rare emergencies at high impedance).
func Profiles() []Profile {
	return []Profile{
		// ---- SPECint 2000 ----
		{Name: "bzip2", BusyOps: 95, MemFrac: 0.25, StoreFrac: 0.4, BranchBlock: 6, BranchEntropy: 0.25, QuietLoads: 1, WorkingSetKB: 256, StrideBytes: 64},
		{Name: "crafty", BusyOps: 140, MemFrac: 0.2, StoreFrac: 0.2, BranchBlock: 8, BranchEntropy: 0.2, WorkingSetKB: 32},
		{Name: "eon", BusyOps: 70, FPFrac: 0.3, MemFrac: 0.25, StoreFrac: 0.35, BranchBlock: 8, BranchEntropy: 0.5, QuietDivs: 1, WorkingSetKB: 24},
		{Name: "gap", BusyOps: 110, MemFrac: 0.3, StoreFrac: 0.3, BranchBlock: 5, BranchEntropy: 0.2, QuietLoads: 1, WorkingSetKB: 192, StrideBytes: 64},
		{Name: "gcc", BusyOps: 100, MemFrac: 0.3, StoreFrac: 0.4, BranchBlock: 10, BranchEntropy: 0.6, QuietLoads: 2, WorkingSetKB: 512, StrideBytes: 128},
		{Name: "gzip", BusyOps: 120, MemFrac: 0.3, StoreFrac: 0.35, BranchBlock: 6, BranchEntropy: 0.3, WorkingSetKB: 128, StrideBytes: 32},
		{Name: "mcf", BusyOps: 30, MemFrac: 0.5, StoreFrac: 0.1, BranchBlock: 3, BranchEntropy: 0.4, QuietLoads: 6, WorkingSetKB: 8192, StrideBytes: 512},
		{Name: "parser", BusyOps: 100, MemFrac: 0.35, StoreFrac: 0.3, BranchBlock: 8, BranchEntropy: 0.45, QuietLoads: 2, WorkingSetKB: 1024, StrideBytes: 128},
		{Name: "perlbmk", BusyOps: 85, MemFrac: 0.3, StoreFrac: 0.35, BranchBlock: 8, BranchEntropy: 0.3, QuietLoads: 1, WorkingSetKB: 96},
		{Name: "twolf", BusyOps: 110, MemFrac: 0.3, StoreFrac: 0.25, BranchBlock: 8, BranchEntropy: 0.45, QuietLoads: 2, WorkingSetKB: 384, StrideBytes: 128},
		{Name: "vortex", BusyOps: 120, MemFrac: 0.35, StoreFrac: 0.4, BranchBlock: 6, BranchEntropy: 0.25, WorkingSetKB: 256, StrideBytes: 64},
		{Name: "vpr", BusyOps: 80, MemFrac: 0.3, StoreFrac: 0.3, BranchBlock: 8, BranchEntropy: 0.5, QuietLoads: 2, WorkingSetKB: 512, StrideBytes: 128},

		// ---- SPECfp 2000 ----
		{Name: "ammp", BusyOps: 60, FPFrac: 0.6, MemFrac: 0.4, StoreFrac: 0.2, BranchBlock: 2, QuietLoads: 8, WorkingSetKB: 4096, StrideBytes: 256},
		{Name: "applu", BusyOps: 80, FPFrac: 0.6, MemFrac: 0.3, StoreFrac: 0.3, BranchBlock: 2, QuietDivs: 1, WorkingSetKB: 2048, StrideBytes: 64},
		{Name: "apsi", BusyOps: 65, FPFrac: 0.5, MemFrac: 0.3, StoreFrac: 0.3, BranchBlock: 3, BranchEntropy: 0.15, QuietDivs: 1, WorkingSetKB: 512, StrideBytes: 64},
		{Name: "art", BusyOps: 60, FPFrac: 0.5, MemFrac: 0.45, StoreFrac: 0.1, BranchBlock: 3, QuietLoads: 5, WorkingSetKB: 4096, StrideBytes: 256},
		{Name: "equake", BusyOps: 75, FPFrac: 0.5, MemFrac: 0.4, StoreFrac: 0.2, BranchBlock: 3, BranchEntropy: 0.1, QuietLoads: 3, WorkingSetKB: 2048, StrideBytes: 128},
		{Name: "facerec", BusyOps: 62, FPFrac: 0.6, MemFrac: 0.25, StoreFrac: 0.25, BranchBlock: 3, BranchEntropy: 0.15, QuietDivs: 1, WorkingSetKB: 1024, StrideBytes: 64},
		{Name: "fma3d", BusyOps: 55, FPFrac: 0.55, MemFrac: 0.3, StoreFrac: 0.3, BranchBlock: 4, BranchEntropy: 0.2, QuietDivs: 1, WorkingSetKB: 1024, StrideBytes: 64},
		{Name: "galgel", BusyOps: 130, FPFrac: 0.65, MemFrac: 0.25, StoreFrac: 0.3, BranchBlock: 2, QuietDivs: 2, WorkingSetKB: 256, StrideBytes: 64},
		{Name: "lucas", BusyOps: 55, FPFrac: 0.6, MemFrac: 0.35, StoreFrac: 0.2, BranchBlock: 1, QuietLoads: 5, WorkingSetKB: 4096, StrideBytes: 512},
		{Name: "mesa", BusyOps: 55, FPFrac: 0.4, MemFrac: 0.3, StoreFrac: 0.35, BranchBlock: 5, BranchEntropy: 0.2, QuietLoads: 1, WorkingSetKB: 64},
		{Name: "mgrid", BusyOps: 65, FPFrac: 0.65, MemFrac: 0.3, StoreFrac: 0.25, BranchBlock: 1, QuietDivs: 1, WorkingSetKB: 2048, StrideBytes: 64},
		{Name: "sixtrack", BusyOps: 48, FPFrac: 0.6, MemFrac: 0.25, StoreFrac: 0.25, BranchBlock: 3, BranchEntropy: 0.2, QuietDivs: 1, WorkingSetKB: 128},
		{Name: "swim", BusyOps: 65, FPFrac: 0.65, MemFrac: 0.35, StoreFrac: 0.3, BranchBlock: 1, QuietDivs: 1, WorkingSetKB: 4096, StrideBytes: 64},
		{Name: "wupwise", BusyOps: 70, FPFrac: 0.55, MemFrac: 0.3, StoreFrac: 0.3, BranchBlock: 2, BranchEntropy: 0.1, QuietDivs: 1, WorkingSetKB: 512, StrideBytes: 64},
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ChallengingEight returns the paper's most-voltage-variable subset used in
// Sections 4 and 5.
func ChallengingEight() []string {
	return []string{"swim", "mgrid", "gcc", "galgel", "facerec", "sixtrack", "eon", "applu"}
}

// Names returns all benchmark names, sorted.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}
