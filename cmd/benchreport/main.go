// Command benchreport times the sweep-heavy experiment set serially and in
// parallel and writes the comparison to BENCH_sweep.json.
//
// Usage:
//
//	benchreport                  # writes BENCH_sweep.json in the CWD
//	benchreport -o out.json -repeat 3
//
// Four timings are reported: serial cold (one worker, all caches flushed),
// parallel cold (one worker per core, caches flushed), serial warm (memos
// populated — measures the kernel/program/envelope cache win) and the
// derived speedups. On a single-core machine the parallel/serial ratio is
// expected to hover near 1; the warm/cold ratio shows the cache win
// regardless of core count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/workload"
)

var sweepIDs = []string{"table2", "fig14", "stressmark-actuation", "ablation-window"}

// Report is the schema of BENCH_sweep.json.
type Report struct {
	GOMAXPROCS    int      `json:"gomaxprocs"`
	NumCPU        int      `json:"num_cpu"`
	Experiments   []string `json:"experiments"`
	Repeat        int      `json:"repeat"`
	SerialColdNs  int64    `json:"serial_cold_ns_per_op"`
	ParallelNs    int64    `json:"parallel_cold_ns_per_op"`
	SerialWarmNs  int64    `json:"serial_warm_ns_per_op"`
	Speedup       float64  `json:"parallel_speedup"`
	CacheSpeedup  float64  `json:"warm_cache_speedup"`
	GeneratedUnix int64    `json:"generated_unix"`
}

func resetCaches() {
	experiments.ResetMemo()
	workload.ResetProgramCache()
	pdn.ResetKernelCache()
	core.ResetEnvelopeCache()
}

func runSet(cfg experiments.Config) error {
	reg := experiments.Registry()
	for _, id := range sweepIDs {
		if err := reg[id](cfg, io.Discard); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// timeSet returns the best-of-repeat wall time of one full sweep-set run.
func timeSet(cfg experiments.Config, repeat int, warm bool) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < repeat; r++ {
		if !warm {
			resetCaches()
		}
		start := time.Now()
		if err := runSet(cfg); err != nil {
			return 0, err
		}
		el := time.Since(start)
		if r == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

func main() {
	var (
		out    = flag.String("o", "BENCH_sweep.json", "output path")
		repeat = flag.Int("repeat", 2, "timed repetitions per configuration (best is kept)")
	)
	flag.Parse()

	cfg := experiments.Quick()
	cfg.Cycles = 30_000
	cfg.Warmup = 10_000
	cfg.Iterations = 300
	cfg.StressIter = 250
	cfg.Benchmarks = []string{"swim", "gcc"}

	serialCfg := cfg
	serialCfg.Parallel = 1
	parallelCfg := cfg
	parallelCfg.Parallel = runtime.GOMAXPROCS(0)

	serialCold, err := timeSet(serialCfg, *repeat, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	parallelCold, err := timeSet(parallelCfg, *repeat, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Warm pass: memos already populated by the run above, so this measures
	// render + cache-hit cost. Re-prime with the serial config first so the
	// memo keys match (Parallel is excluded from the key, so either works).
	serialWarm, err := timeSet(serialCfg, *repeat, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rep := Report{
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Experiments:   sweepIDs,
		Repeat:        *repeat,
		SerialColdNs:  serialCold.Nanoseconds(),
		ParallelNs:    parallelCold.Nanoseconds(),
		SerialWarmNs:  serialWarm.Nanoseconds(),
		Speedup:       float64(serialCold) / float64(parallelCold),
		CacheSpeedup:  float64(serialCold) / float64(serialWarm),
		GeneratedUnix: time.Now().Unix(),
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: serial %v, parallel(%d) %v (%.2fx), warm %v (%.1fx cache win)\n",
		*out, serialCold.Round(time.Millisecond), rep.GOMAXPROCS,
		parallelCold.Round(time.Millisecond), rep.Speedup,
		serialWarm.Round(time.Millisecond), rep.CacheSpeedup)
}
