// Command benchreport times the sweep-heavy experiment set serially and in
// parallel and writes the comparison to BENCH_sweep.json.
//
// Usage:
//
//	benchreport                  # writes BENCH_sweep.json in the CWD
//	benchreport -o out.json -repeat 3
//	benchreport -check           # CI gate: telemetry-off regression check
//
// Five timings are reported: serial cold (one worker, all caches flushed),
// parallel cold (one worker per core, caches flushed), serial warm (memos
// populated — measures the kernel/program/envelope cache win), serial cold
// with a disabled telemetry tracer attached (the "telemetry off" tax,
// which must stay under a few percent), and the derived speedups. The
// report also snapshots every shared cache's hit/miss/eviction counts
// after the warm pass, so the perf trajectory captures cache
// effectiveness, not just wall time.
//
// -check compares a fresh telemetry-off measurement against the committed
// baseline and exits non-zero on a regression beyond -tolerance percent
// (wall-clock comparisons are machine-sensitive; regenerate the baseline
// with plain benchreport when moving machines).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/sim"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

var sweepIDs = []string{"table2", "fig14", "stressmark-actuation", "ablation-window"}

// Report is the schema of BENCH_sweep.json.
type Report struct {
	GOMAXPROCS      int                       `json:"gomaxprocs"`
	NumCPU          int                       `json:"num_cpu"`
	Experiments     []string                  `json:"experiments"`
	Repeat          int                       `json:"repeat"`
	SerialColdNs    int64                     `json:"serial_cold_ns_per_op"`
	ParallelNs      int64                     `json:"parallel_cold_ns_per_op"`
	SerialWarmNs    int64                     `json:"serial_warm_ns_per_op"`
	TelemetryOffNs  int64                     `json:"telemetry_off_ns_per_op"`
	Speedup         float64                   `json:"parallel_speedup"`
	CacheSpeedup    float64                   `json:"warm_cache_speedup"`
	TelemetryOffPct float64                   `json:"telemetry_off_overhead_pct"`
	Caches          map[string]sim.CacheStats `json:"caches"`
	GeneratedUnix   int64                     `json:"generated_unix"`
}

func resetCaches() {
	experiments.ResetMemo()
	workload.ResetProgramCache()
	pdn.ResetKernelCache()
	core.ResetEnvelopeCache()
}

// cacheStats gathers every shared cache's counters under stable names.
func cacheStats() map[string]sim.CacheStats {
	return map[string]sim.CacheStats{
		"pdn_kernel":          pdn.KernelCacheStats(),
		"workload_program":    workload.ProgramCacheStats(),
		"workload_stressmark": workload.StressmarkCacheStats(),
		"core_envelope":       core.EnvelopeCacheStats(),
		"experiments_memo":    experiments.MemoStats(),
	}
}

func runSet(cfg experiments.Config) error {
	reg := experiments.Registry()
	for _, id := range sweepIDs {
		if err := reg[id](cfg, io.Discard); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// timeSet returns the best-of-repeat wall time of one full sweep-set run.
func timeSet(cfg experiments.Config, repeat int, warm bool) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < repeat; r++ {
		if !warm {
			resetCaches()
		}
		start := time.Now()
		if err := runSet(cfg); err != nil {
			return 0, err
		}
		el := time.Since(start)
		if r == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Cycles = 30_000
	cfg.Warmup = 10_000
	cfg.Iterations = 300
	cfg.StressIter = 250
	cfg.Benchmarks = []string{"swim", "gcc"}
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// measureTelemetryOff times the serial cold sweep set with a disabled
// tracer attached to every system — the configuration whose cost the <2%
// overhead contract bounds.
func measureTelemetryOff(repeat int) (time.Duration, error) {
	cfg := benchConfig()
	cfg.Parallel = 1
	tracer := telemetry.NewTracer(0)
	tracer.SetEnabled(false)
	cfg.Telemetry = tracer
	return timeSet(cfg, repeat, false)
}

func check(baselinePath string, repeat int, tolerancePct float64) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fatal(fmt.Errorf("benchreport -check: no baseline: %w", err))
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("benchreport -check: bad baseline %s: %w", baselinePath, err))
	}
	ref := base.TelemetryOffNs
	if ref == 0 {
		// Baselines predating the telemetry field: gate on serial cold.
		ref = base.SerialColdNs
	}
	measured, err := measureTelemetryOff(repeat)
	if err != nil {
		fatal(err)
	}
	limit := time.Duration(float64(ref) * (1 + tolerancePct/100))
	fmt.Printf("telemetry-off sweep: measured %v, baseline %v, limit %v (+%.0f%%)\n",
		measured.Round(time.Millisecond), time.Duration(ref).Round(time.Millisecond),
		limit.Round(time.Millisecond), tolerancePct)
	if measured > limit {
		fmt.Fprintf(os.Stderr, "FAIL: telemetry-off hot path regressed beyond %.0f%% of the committed baseline %s\n",
			tolerancePct, baselinePath)
		os.Exit(1)
	}
	fmt.Println("ok: telemetry-off hot path within baseline")
}

func main() {
	var (
		out       = flag.String("o", "BENCH_sweep.json", "output path")
		repeat    = flag.Int("repeat", 2, "timed repetitions per configuration (best is kept)")
		doCheck   = flag.Bool("check", false, "compare against -baseline and fail on regression instead of writing a report")
		baseline  = flag.String("baseline", "BENCH_sweep.json", "baseline report for -check")
		tolerance = flag.Float64("tolerance", 5, "allowed regression percent for -check")
	)
	flag.Parse()

	if *doCheck {
		check(*baseline, *repeat, *tolerance)
		return
	}

	cfg := benchConfig()
	serialCfg := cfg
	serialCfg.Parallel = 1
	parallelCfg := cfg
	parallelCfg.Parallel = runtime.GOMAXPROCS(0)

	serialCold, err := timeSet(serialCfg, *repeat, false)
	if err != nil {
		fatal(err)
	}
	parallelCold, err := timeSet(parallelCfg, *repeat, false)
	if err != nil {
		fatal(err)
	}
	// Warm pass: memos already populated by the run above, so this measures
	// render + cache-hit cost. Re-prime with the serial config first so the
	// memo keys match (Parallel is excluded from the key, so either works).
	serialWarm, err := timeSet(serialCfg, *repeat, true)
	if err != nil {
		fatal(err)
	}
	caches := cacheStats()
	telemOff, err := measureTelemetryOff(*repeat)
	if err != nil {
		fatal(err)
	}

	rep := Report{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Experiments:     sweepIDs,
		Repeat:          *repeat,
		SerialColdNs:    serialCold.Nanoseconds(),
		ParallelNs:      parallelCold.Nanoseconds(),
		SerialWarmNs:    serialWarm.Nanoseconds(),
		TelemetryOffNs:  telemOff.Nanoseconds(),
		Speedup:         float64(serialCold) / float64(parallelCold),
		CacheSpeedup:    float64(serialCold) / float64(serialWarm),
		TelemetryOffPct: 100 * (float64(telemOff)/float64(serialCold) - 1),
		Caches:          caches,
		GeneratedUnix:   time.Now().Unix(),
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: serial %v, parallel(%d) %v (%.2fx), warm %v (%.1fx cache win), telemetry-off %v (%+.1f%%)\n",
		*out, serialCold.Round(time.Millisecond), rep.GOMAXPROCS,
		parallelCold.Round(time.Millisecond), rep.Speedup,
		serialWarm.Round(time.Millisecond), rep.CacheSpeedup,
		telemOff.Round(time.Millisecond), rep.TelemetryOffPct)
}
