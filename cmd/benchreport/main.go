// Command benchreport times the sweep-heavy experiment set serially and in
// parallel and writes the comparison to BENCH_sweep.json.
//
// Usage:
//
//	benchreport                  # writes BENCH_sweep.json in the CWD
//	benchreport -o out.json -repeat 3
//	benchreport -check           # CI gate: telemetry-off regression check
//
// Six timings are reported: serial cold (one worker, all caches flushed),
// parallel cold (one worker per core, caches flushed), serial warm (memos
// populated — measures the kernel/program/envelope cache win), serial cold
// with a disabled cycle-telemetry tracer attached (the "telemetry off"
// tax), serial cold with a disabled span tracer in the run context (the
// "spans off" tax — how didtd runs with -spans=false), and the derived
// speedups; both disabled-tracer taxes must stay under a few percent. The
// five configurations are interleaved round-robin — with the order
// reversed on alternate rounds — and each reports its median, so slow
// machine drift (thermal throttling, background load, turbo decay within
// a round) lands on every configuration equally instead of biasing
// whichever one ran last. The report also snapshots every shared cache's
// hit/miss/eviction counts after the warm pass, so the perf trajectory
// captures cache effectiveness, not just wall time.
//
// -check measures the telemetry-off, spans-off and bare serial cold
// sweeps in the same process (interleaved, medians) and exits non-zero
// when either disabled tracer costs more than -tolerance percent over the
// bare sweep. The gate
// is a ratio on purpose: absolute wall-clock comparisons against a
// committed baseline false-fail whenever a shared host runs slower than
// it did at baseline time.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"didt/internal/control"
	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/pdn"
	"didt/internal/sim"
	"didt/internal/telemetry"
	"didt/internal/workload"
)

var sweepIDs = []string{"table2", "fig14", "stressmark-actuation", "ablation-window"}

// railsSweepIDs is the multi-rail cold sweep: per-rail emergency counts
// across the benchmark set plus the per-rail threshold solve. It exercises
// the rail-graph step path (sequential, never the lockstep batch), so its
// timing tracks the multi-rail family's cost independently of the
// single-rail sweeps above. Reported, not gated: the family is new and its
// cost has no baseline contract yet.
var railsSweepIDs = []string{"rails-emergencies", "rails-thresholds"}

// Report is the schema of BENCH_sweep.json.
type Report struct {
	GOMAXPROCS      int      `json:"gomaxprocs"`
	NumCPU          int      `json:"num_cpu"`
	Experiments     []string `json:"experiments"`
	Repeat          int      `json:"repeat"`
	RailsExps       []string `json:"rails_experiments"`
	SerialColdNs    int64    `json:"serial_cold_ns_per_op"`
	MultiRailColdNs int64    `json:"multirail_cold_ns_per_op"`
	ParallelNs      int64    `json:"parallel_cold_ns_per_op"`
	SerialWarmNs    int64    `json:"serial_warm_ns_per_op"`
	TelemetryOffNs  int64    `json:"telemetry_off_ns_per_op"`
	SpansOffNs      int64    `json:"spans_off_ns_per_op"`
	Speedup         float64  `json:"parallel_speedup"`
	CacheSpeedup    float64  `json:"warm_cache_speedup"`
	TelemetryOffPct float64  `json:"telemetry_off_overhead_pct"`
	SpansOffPct     float64  `json:"spans_off_overhead_pct"`
	// ColdSpeedup compares this run's serial cold time against the
	// baseline report it replaces (the previous BENCH_sweep.json); zero
	// when no prior baseline was readable.
	ColdSpeedup   float64                   `json:"cold_speedup_vs_baseline"`
	Caches        map[string]sim.CacheStats `json:"caches"`
	GeneratedUnix int64                     `json:"generated_unix"`
}

func resetCaches() {
	experiments.ResetMemo()
	experiments.ResetRunCache()
	workload.ResetProgramCache()
	pdn.ResetKernelCache()
	core.ResetEnvelopeCache()
	core.ResetTraceCache()
	control.ResetSolveCache()
}

// cacheStats gathers every shared cache's counters under stable names.
func cacheStats() map[string]sim.CacheStats {
	return map[string]sim.CacheStats{
		"pdn_kernel":          pdn.KernelCacheStats(),
		"workload_program":    workload.ProgramCacheStats(),
		"workload_stressmark": workload.StressmarkCacheStats(),
		"core_envelope":       core.EnvelopeCacheStats(),
		"core_trace":          core.TraceCacheStats(),
		"control_solve":       control.SolveCacheStats(),
		"experiments_memo":    experiments.MemoStats(),
		"experiments_run":     experiments.RunCacheStats(),
	}
}

func runSet(cfg experiments.Config) error {
	return runIDs(cfg, sweepIDs)
}

func runIDs(cfg experiments.Config, ids []string) error {
	reg := experiments.Registry()
	for _, id := range ids {
		if err := reg[id](cfg, io.Discard); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
	}
	return nil
}

// timeRailsOnce runs the multi-rail sweep set cold and returns its wall
// time.
func timeRailsOnce(cfg experiments.Config) (time.Duration, error) {
	resetCaches()
	start := time.Now()
	if err := runIDs(cfg, railsSweepIDs); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// timeOnce runs the sweep set once and returns its wall time, flushing
// every shared cache first unless the measurement wants them warm.
func timeOnce(cfg experiments.Config, warm bool) (time.Duration, error) {
	if !warm {
		resetCaches()
	}
	start := time.Now()
	if err := runSet(cfg); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// median reports the median sample (mean of the middle two for even
// counts) — robust to one slow outlier round, unlike best-of, and
// unbiased under monotone machine drift, unlike mean-of-tail.
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func benchConfig() experiments.Config {
	cfg := experiments.Quick()
	cfg.Cycles = 30_000
	cfg.Warmup = 10_000
	cfg.Iterations = 300
	cfg.StressIter = 250
	cfg.Benchmarks = []string{"swim", "gcc"}
	return cfg
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// telemetryOffConfig is the serial cold sweep set with a disabled tracer
// attached to every system — the configuration whose cost the <2%
// overhead contract bounds.
func telemetryOffConfig() experiments.Config {
	cfg := benchConfig()
	cfg.Parallel = 1
	tracer := telemetry.NewTracer(0)
	tracer.SetEnabled(false)
	cfg.Telemetry = tracer
	return cfg
}

// spansOffConfig is the serial cold sweep with a disabled span tracer in
// the run context — exactly how didtd executes with -spans=false. The
// span dispatch in sim.Map must cost one pointer test per job when the
// tracer is off, so this measurement is gated against the bare serial
// sweep the same way the cycle-telemetry one is.
func spansOffConfig() experiments.Config {
	cfg := benchConfig()
	cfg.Parallel = 1
	tracer := telemetry.NewTracer(0)
	tracer.SetEnabled(false)
	cfg.Ctx = telemetry.ContextWithTracer(context.Background(), tracer)
	return cfg
}

// check gates the telemetry-off overhead: a disabled tracer attached to
// every system must cost no more than tolerancePct over the bare serial
// cold sweep. Both configurations are measured in this process,
// interleaved round-robin with medians, and compared against each other —
// a ratio is insensitive to how fast the host happens to be running,
// where the old absolute comparison against the committed baseline's
// wall time false-failed whenever a shared host drifted between the
// baseline run and CI.
func check(baselinePath string, repeat int, tolerancePct float64) {
	if raw, err := os.ReadFile(baselinePath); err != nil {
		fatal(fmt.Errorf("benchreport -check: no baseline: %w", err))
	} else if err := json.Unmarshal(raw, new(Report)); err != nil {
		// The baseline's timings are not compared (see above), but a
		// missing or corrupt artifact still means the perf trajectory is
		// broken and should fail loudly here rather than confuse the next
		// regeneration.
		fatal(fmt.Errorf("benchreport -check: bad baseline %s: %w", baselinePath, err))
	}
	serialCfg := benchConfig()
	serialCfg.Parallel = 1
	var serials, offs, spansOffs []time.Duration
	for r := 0; r < repeat; r++ {
		// Rotate which configuration runs first: under sustained load the
		// host slows down within a round (turbo decay), and a fixed order
		// would systematically tax whichever side runs last.
		blocks := []func() error{
			func() error {
				d, err := timeOnce(serialCfg, false)
				serials = append(serials, d)
				return err
			},
			func() error {
				d, err := timeOnce(telemetryOffConfig(), false)
				offs = append(offs, d)
				return err
			},
			func() error {
				d, err := timeOnce(spansOffConfig(), false)
				spansOffs = append(spansOffs, d)
				return err
			},
		}
		for i := 0; i < len(blocks); i++ {
			if err := blocks[(i+r)%len(blocks)](); err != nil {
				fatal(err)
			}
		}
	}
	serial := median(serials)
	limit := time.Duration(float64(serial) * (1 + tolerancePct/100))
	failed := false
	for _, g := range []struct {
		name string
		d    time.Duration
	}{
		{"telemetry-off", median(offs)},
		{"spans-off", median(spansOffs)},
	} {
		fmt.Printf("%s sweep: measured %v vs bare serial %v, limit %v (+%.0f%%)\n",
			g.name, g.d.Round(time.Millisecond), serial.Round(time.Millisecond),
			limit.Round(time.Millisecond), tolerancePct)
		if g.d > limit {
			fmt.Fprintf(os.Stderr, "FAIL: %s costs more than %.0f%% over the bare serial sweep\n",
				g.name, tolerancePct)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("ok: disabled telemetry and span hot paths within tolerance of the bare sweep")
}

func main() {
	var (
		out       = flag.String("o", "BENCH_sweep.json", "output path")
		repeat    = flag.Int("repeat", 2, "timed repetitions per configuration (best is kept)")
		doCheck   = flag.Bool("check", false, "compare against -baseline and fail on regression instead of writing a report")
		baseline  = flag.String("baseline", "BENCH_sweep.json", "baseline report for -check")
		tolerance = flag.Float64("tolerance", 5, "allowed telemetry-off overhead percent over the bare serial sweep for -check")
	)
	flag.Parse()

	if *doCheck {
		check(*baseline, *repeat, *tolerance)
		return
	}

	// Keep the previous report (if any) around as the baseline the new
	// serial cold time is compared against.
	var prior Report
	if raw, err := os.ReadFile(*out); err == nil {
		_ = json.Unmarshal(raw, &prior)
	}

	cfg := benchConfig()
	serialCfg := cfg
	serialCfg.Parallel = 1
	parallelCfg := cfg
	parallelCfg.Parallel = runtime.GOMAXPROCS(0)

	// Every round measures all four configurations back to back, so
	// whatever the machine is doing in the background hits each
	// configuration in every round rather than only whichever block ran
	// last. Serial warm always runs immediately after serial cold (it
	// times the caches that run just populated); the three blocks —
	// [serial cold + warm], [parallel cold], [telemetry-off cold] —
	// reverse order on odd rounds, because under sustained load the host
	// slows down within a round (turbo decay) and a fixed order would
	// systematically tax whichever block runs last.
	var serialColds, serialWarms, parallelColds, telemOffs, spansOffsT, railsColds []time.Duration
	var caches map[string]sim.CacheStats
	serialBlock := func() error {
		d, err := timeOnce(serialCfg, false)
		if err != nil {
			return err
		}
		serialColds = append(serialColds, d)
		if d, err = timeOnce(serialCfg, true); err != nil {
			return err
		}
		serialWarms = append(serialWarms, d)
		if caches == nil {
			caches = cacheStats()
		}
		return nil
	}
	parallelBlock := func() error {
		d, err := timeOnce(parallelCfg, false)
		parallelColds = append(parallelColds, d)
		return err
	}
	offBlock := func() error {
		d, err := timeOnce(telemetryOffConfig(), false)
		telemOffs = append(telemOffs, d)
		return err
	}
	spansOffBlock := func() error {
		d, err := timeOnce(spansOffConfig(), false)
		spansOffsT = append(spansOffsT, d)
		return err
	}
	railsBlock := func() error {
		d, err := timeRailsOnce(serialCfg)
		railsColds = append(railsColds, d)
		return err
	}
	for r := 0; r < *repeat; r++ {
		blocks := []func() error{serialBlock, parallelBlock, offBlock, spansOffBlock, railsBlock}
		if r%2 == 1 {
			blocks = []func() error{railsBlock, spansOffBlock, offBlock, parallelBlock, serialBlock}
		}
		for _, b := range blocks {
			if err := b(); err != nil {
				fatal(err)
			}
		}
	}
	serialCold := median(serialColds)
	serialWarm := median(serialWarms)
	parallelCold := median(parallelColds)
	telemOff := median(telemOffs)
	spansOff := median(spansOffsT)
	railsCold := median(railsColds)

	rep := Report{
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Experiments:     sweepIDs,
		RailsExps:       railsSweepIDs,
		Repeat:          *repeat,
		SerialColdNs:    serialCold.Nanoseconds(),
		MultiRailColdNs: railsCold.Nanoseconds(),
		ParallelNs:      parallelCold.Nanoseconds(),
		SerialWarmNs:    serialWarm.Nanoseconds(),
		TelemetryOffNs:  telemOff.Nanoseconds(),
		SpansOffNs:      spansOff.Nanoseconds(),
		Speedup:         float64(serialCold) / float64(parallelCold),
		CacheSpeedup:    float64(serialCold) / float64(serialWarm),
		TelemetryOffPct: 100 * (float64(telemOff)/float64(serialCold) - 1),
		SpansOffPct:     100 * (float64(spansOff)/float64(serialCold) - 1),
		Caches:          caches,
		GeneratedUnix:   time.Now().Unix(),
	}
	if prior.SerialColdNs > 0 {
		rep.ColdSpeedup = float64(prior.SerialColdNs) / float64(serialCold.Nanoseconds())
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: serial %v, parallel(%d) %v (%.2fx), warm %v (%.1fx cache win), telemetry-off %v (%+.1f%%), spans-off %v (%+.1f%%), multi-rail %v\n",
		*out, serialCold.Round(time.Millisecond), rep.GOMAXPROCS,
		parallelCold.Round(time.Millisecond), rep.Speedup,
		serialWarm.Round(time.Millisecond), rep.CacheSpeedup,
		telemOff.Round(time.Millisecond), rep.TelemetryOffPct,
		spansOff.Round(time.Millisecond), rep.SpansOffPct,
		railsCold.Round(time.Millisecond))
}
