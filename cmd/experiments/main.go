// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table2
//	experiments -run all -cycles 220000
//	experiments -run fig11 -trace-out fig11.trace.json -metrics-out fig11.metrics.json
//	experiments -run table2 -progress -cpuprofile cpu.pprof
//
// Observability: -trace-out captures every simulated system's cycle-level
// events (Chrome trace-event format by default — open in Perfetto or
// chrome://tracing — or JSONL with -trace-format jsonl); -metrics-out
// writes the run manifest (counters, gauges, histograms, cache hit rates,
// sweep-pool utilization); -cpuprofile/-memprofile write pprof profiles;
// -progress keeps a live sweep-status line on stderr. None of these change
// the rendered experiment output, which stays byte-identical at any
// -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"didt/internal/experiments"
	"didt/internal/sim"
	"didt/internal/spec"
	"didt/internal/telemetry"
)

func main() {
	var (
		runID    = flag.String("run", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		cycles   = flag.Uint64("cycles", 0, "per-run cycle budget (0 = default)")
		warmup   = flag.Uint64("warmup", 0, "warmup cycles excluded from voltage stats (0 = default)")
		iters    = flag.Int("iterations", 0, "benchmark loop iterations (0 = default)")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		bench    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		parallel = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")

		traceOut    = flag.String("trace-out", "", "write a cycle-level event trace to this path")
		traceFormat = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto/chrome://tracing) or jsonl")
		traceRing   = flag.Int("trace-ring", 0, "events retained per trace stream (0 = default)")
		metricsOut  = flag.String("metrics-out", "", "write the metrics run manifest (JSON) to this path")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this path")
		progress    = flag.Bool("progress", false, "live sweep progress line on stderr")
	)
	var seed spec.Seed
	flag.Var(&seed, "seed", "noise/workload seed (only applied when set)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *cycles != 0 {
		cfg.Cycles = *cycles
	}
	if *warmup != 0 {
		cfg.Warmup = *warmup
	}
	if *iters != 0 {
		cfg.Iterations = *iters
	}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The seed applies only when the flag was explicitly set: its absence
	// must not override whatever seed the selected configuration carries.
	cfg.Seed = seed.Resolve(cfg.Seed)
	cfg.Parallel = *parallel
	sim.SetDefaultWorkers(*parallel)

	var tracer *telemetry.Tracer
	if *traceOut != "" {
		if *traceFormat != "chrome" && *traceFormat != "jsonl" {
			fmt.Fprintf(os.Stderr, "unknown -trace-format %q (chrome or jsonl)\n", *traceFormat)
			os.Exit(2)
		}
		tracer = telemetry.NewTracer(*traceRing)
		cfg.Telemetry = tracer
	}
	if *progress {
		pl := telemetry.NewProgress(os.Stderr, "sweep", 0)
		sim.SetProgress(pl.Update)
		defer pl.Done()
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	reg := experiments.Registry()
	var want []string
	if *runID != "all" {
		want = strings.Split(*runID, ",")
	}
	ids, err := experiments.ResolveIDs(want)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, id := range ids {
		runner := reg[id]
		start := time.Now()
		if err := runner(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if err := stopCPU(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := writeTraceFile(*traceOut, *traceFormat, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote trace %s (%d streams)\n", *traceOut, len(tracer.Streams()))
	}
	if *metricsOut != "" {
		m := telemetry.NewManifest("experiments", sim.DefaultWorkers(), telemetry.Default(), tracer)
		m.Experiments = ids
		// Record the resolved base spec the sweep derives its per-run
		// specs from, plus its content hash.
		base := cfg.Spec()
		m.Spec = base
		m.SpecKey = base.Key()
		if err := writeManifestFile(*metricsOut, m); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics manifest %s\n", *metricsOut)
	}
}

func writeTraceFile(path, format string, tracer *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		err = telemetry.WriteJSONL(f, tracer)
	} else {
		err = telemetry.WriteChromeTrace(f, tracer, 0)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeManifestFile(path string, m telemetry.Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = m.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
