// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run table2
//	experiments -run all -cycles 220000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"didt/internal/experiments"
	"didt/internal/sim"
)

func main() {
	var (
		runID    = flag.String("run", "all", "experiment id (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		cycles   = flag.Uint64("cycles", 0, "per-run cycle budget (0 = default)")
		warmup   = flag.Uint64("warmup", 0, "warmup cycles excluded from voltage stats (0 = default)")
		iters    = flag.Int("iterations", 0, "benchmark loop iterations (0 = default)")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		bench    = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		seed     = flag.Int64("seed", 0, "noise/workload seed")
		parallel = flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *cycles != 0 {
		cfg.Cycles = *cycles
	}
	if *warmup != 0 {
		cfg.Warmup = *warmup
	}
	if *iters != 0 {
		cfg.Iterations = *iters
	}
	if *bench != "" {
		cfg.Benchmarks = strings.Split(*bench, ",")
	}
	// Apply the seed only when the flag was explicitly set: its default
	// (0) must not override whatever seed the selected configuration
	// carries.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			cfg.Seed = *seed
		}
	})
	cfg.Parallel = *parallel
	sim.SetDefaultWorkers(*parallel)

	reg := experiments.Registry()
	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := runner(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
