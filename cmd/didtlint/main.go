// Command didtlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: the determinism, telemetryguard,
// hotpath, locks, and directives analyzers that prove the invariants the
// paper reproduction depends on — byte-identical sweep output, a telemetry
// layer that vanishes from the hot path when disabled, and a worker pool
// that never holds a lock across a channel operation.
//
// Usage:
//
//	go run ./cmd/didtlint ./...
//	go run ./cmd/didtlint ./internal/core ./internal/sim
//
// Patterns are interpreted relative to the module root: "./..." (or no
// arguments) lints every package, "./dir/..." a subtree, "./dir" a single
// package. Exit status is 0 when the tree is clean, 1 when any analyzer
// reports a finding, and 2 on usage or load errors.
//
// Violations that are intentional carry an inline justification:
//
//	//didt:allow <analyzer> -- <reason>
//
// on the flagged line or the line above. Per-cycle functions opt into the
// hot-path allocation/locking rules with //didt:hotpath in their doc
// comment. The directives analyzer checks the annotations themselves.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"didt/internal/analysis"
)

const modulePath = "didt"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "didtlint:", err)
		return 2
	}
	pkgs, err := resolvePatterns(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "didtlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "didtlint: no packages matched")
		return 2
	}

	loader := analysis.NewLoader(analysis.Root{Prefix: modulePath, Dir: root})
	suite := analysis.Suite()
	var diags []analysis.Diagnostic
	failed := false
	for _, path := range pkgs {
		pkg, err := loader.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "didtlint: loading %s: %v\n", path, err)
			failed = true
			continue
		}
		ds, err := analysis.Analyze(pkg, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "didtlint: analyzing %s: %v\n", path, err)
			failed = true
			continue
		}
		diags = append(diags, ds...)
	}
	if failed {
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "didtlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the go.mod that
// declares this module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns expands command-line patterns into a sorted, deduplicated
// list of module import paths. No arguments means "./...".
func resolvePatterns(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			pkgs, err := walkPackages(root, root)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		case strings.HasSuffix(arg, "/..."):
			sub := filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(arg, "/...")))
			pkgs, err := walkPackages(root, sub)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				add(p)
			}
		default:
			rel := strings.TrimPrefix(strings.TrimPrefix(arg, modulePath+"/"), "./")
			rel = filepath.ToSlash(filepath.Clean(rel))
			if rel == "." || rel == "" {
				return nil, fmt.Errorf("pattern %q does not name a package", arg)
			}
			if !hasGoFiles(filepath.Join(root, filepath.FromSlash(rel))) {
				return nil, fmt.Errorf("pattern %q matches no Go package", arg)
			}
			add(modulePath + "/" + rel)
		}
	}
	sort.Strings(out)
	return out, nil
}

// walkPackages lists every package directory under start, skipping
// testdata fixtures, vendored code, and hidden directories.
func walkPackages(root, start string) ([]string, error) {
	var pkgs []string
	err := filepath.WalkDir(start, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != start && (name == "testdata" || name == "vendor" ||
			(strings.HasPrefix(name, ".") && name != ".")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil // no Go files at the module root today; be safe anyway
		}
		pkgs = append(pkgs, modulePath+"/"+filepath.ToSlash(rel))
		return nil
	})
	return pkgs, err
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
