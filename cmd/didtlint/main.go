// Command didtlint runs the repository's custom static-analysis suite
// (internal/analysis) over the module: the intra-package determinism,
// telemetryguard, hotpath, locks, and directives analyzers plus the
// whole-program purity, ctxflow, goroleak, and lockorder analyzers that
// prove the invariants the paper reproduction depends on — byte-identical
// sweep output, a telemetry layer that vanishes from the hot path when
// disabled, serving-path blocking operations that respect context
// cancellation, goroutines with visible join points, and a deadlock-free
// lock acquisition order.
//
// Usage:
//
//	go run ./cmd/didtlint ./...
//	go run ./cmd/didtlint ./internal/core ./internal/sim
//	go run ./cmd/didtlint -sarif didtlint.sarif -baseline didtlint.baseline.json ./...
//
// Patterns are interpreted relative to the module root: "./..." (or no
// arguments) lints every package, "./dir/..." a subtree, "./dir" a single
// package. Exit status is 0 when the tree is clean, 1 when any analyzer
// reports a finding or the suppression budget drifts, and 2 on usage or
// load errors.
//
// Violations that are intentional carry an inline justification:
//
//	//didt:allow <analyzer>[,<analyzer>...] -- <reason>
//
// on the flagged line or the line above. Per-cycle functions opt into the
// hot-path allocation/locking rules with //didt:hotpath in their doc
// comment. The directives analyzer checks the annotations themselves, and
// the suite reports any allow directive that no longer suppresses a live
// diagnostic as stale.
//
// Flags:
//
//	-sarif <file>      also write findings as a SARIF 2.1.0 log
//	-baseline <file>   compare //didt:allow counts against the committed
//	                   suppression budget; drift in either direction fails
//	-write-baseline    rewrite the -baseline file from the current tree
//	                   instead of checking it
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"didt/internal/analysis"
)

const modulePath = "didt"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("didtlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	sarifPath := fs.String("sarif", "", "write findings as a SARIF 2.1.0 log to this file")
	baselinePath := fs.String("baseline", "", "suppression-budget file to check //didt:allow counts against")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current tree instead of checking it")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "didtlint: -write-baseline requires -baseline <file>")
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "didtlint:", err)
		return 2
	}
	pkgs, err := resolvePatterns(root, fs.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "didtlint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "didtlint: no packages matched")
		return 2
	}

	loader := analysis.NewLoader(analysis.Root{Prefix: modulePath, Dir: root})
	suite := analysis.Suite()
	res, err := analysis.RunSuite(loader, pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "didtlint:", err)
		return 2
	}

	for _, d := range res.Diags {
		fmt.Println(d)
	}
	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "didtlint:", err)
			return 2
		}
		werr := analysis.WriteSARIF(f, suite, res.Diags, root)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "didtlint: writing %s: %v\n", *sarifPath, werr)
			return 2
		}
	}

	exit := 0
	if len(res.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "didtlint: %d finding(s)\n", len(res.Diags))
		exit = 1
	}

	switch {
	case *writeBaseline:
		if err := analysis.WriteBaseline(*baselinePath, res.AllowCounts); err != nil {
			fmt.Fprintln(os.Stderr, "didtlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "didtlint: wrote suppression budget to %s\n", *baselinePath)
	case *baselinePath != "":
		base, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "didtlint:", err)
			return 2
		}
		if drift := base.Diff(res.AllowCounts); len(drift) > 0 {
			for _, msg := range drift {
				fmt.Fprintln(os.Stderr, "didtlint: baseline drift:", msg)
			}
			exit = 1
		}
	}
	return exit
}

// moduleRoot walks up from the working directory to the go.mod that
// declares this module.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns expands command-line patterns into a sorted, deduplicated
// list of module import paths. No arguments means "./...". Subtree and
// single-package patterns are resolved by filtering the full module walk,
// so every invocation sees the same canonical package set.
func resolvePatterns(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	all, err := analysis.WalkModulePackages(root, modulePath)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(arg, "/..."):
			prefix := importPath(strings.TrimSuffix(arg, "/..."))
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matches no Go package", arg)
			}
		default:
			p := importPath(arg)
			found := false
			for _, q := range all {
				if q == p {
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("pattern %q matches no Go package", arg)
			}
			add(p)
		}
	}
	sort.Strings(out)
	return out, nil
}

// importPath normalizes a command-line package argument ("./internal/sim",
// "internal/sim", "didt/internal/sim") to its module import path.
func importPath(arg string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(arg, modulePath+"/"), "./")
	rel = filepath.ToSlash(filepath.Clean(rel))
	if rel == "." || rel == "" {
		return modulePath
	}
	return modulePath + "/" + rel
}
