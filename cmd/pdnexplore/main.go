// Command pdnexplore prints the power-delivery-network model's responses:
// impedance vs frequency, step response, and the reaction to the paper's
// characteristic current stimuli (Figures 2-6).
//
// Usage:
//
//	pdnexplore                 # all responses at 200% impedance
//	pdnexplore -figure fig6    # just the resonant pulse train
package main

import (
	"flag"
	"fmt"
	"os"

	"didt/internal/experiments"
)

func main() {
	var figure = flag.String("figure", "all", "fig2, fig3, fig4, fig5, fig6 or all")
	flag.Parse()

	ids := []string{"fig2", "fig3", "fig4", "fig5", "fig6"}
	if *figure != "all" {
		ids = []string{*figure}
	}
	reg := experiments.Registry()
	cfg := experiments.Default()
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", id)
			os.Exit(2)
		}
		if err := runner(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
