// Command pdnexplore prints the power-delivery-network model's responses:
// impedance vs frequency, step response, and the reaction to the paper's
// characteristic current stimuli (Figures 2-6). Given a RunSpec it instead
// assembles the described system — single-rail or multi-rail — and prints
// the calibrated per-rail impedance, resonance and coupling tables.
//
// Usage:
//
//	pdnexplore                 # all responses at 200% impedance
//	pdnexplore -figure fig6    # just the resonant pulse train
//	pdnexplore -spec run.json  # per-rail tables for a RunSpec file
//
// -spec takes the same RunSpec JSON the didtd API and didtsim accept and
// resolves it through the same path (strict decode, spec.Resolve), so a
// spec that fails here fails identically at every other entry point — and
// the validation errors carry the same did-you-mean hints.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"didt/internal/core"
	"didt/internal/experiments"
	"didt/internal/spec"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "fig2, fig3, fig4, fig5, fig6 or all")
		specPath = flag.String("spec", "", "RunSpec JSON file; prints per-rail impedance/resonance tables instead of figures")
	)
	flag.Parse()

	if *specPath != "" {
		if err := exploreSpec(*specPath, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	ids := []string{"fig2", "fig3", "fig4", "fig5", "fig6"}
	if *figure != "all" {
		ids = []string{*figure}
	}
	reg := experiments.Registry()
	cfg := experiments.Default()
	for _, id := range ids {
		runner, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", id)
			os.Exit(2)
		}
		if err := runner(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// loadSpec strict-decodes a RunSpec file the way the didtd API does:
// unknown fields and trailing garbage are errors, not silently dropped
// knobs.
func loadSpec(path string) (spec.RunSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return spec.RunSpec{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var sp spec.RunSpec
	if err := dec.Decode(&sp); err != nil {
		return spec.RunSpec{}, fmt.Errorf("%s: %w", path, err)
	}
	if dec.More() {
		return spec.RunSpec{}, fmt.Errorf("%s: trailing data after spec object", path)
	}
	return sp, nil
}

// exploreSpec assembles the system a spec describes and prints its
// delivery-network tables. Nothing is simulated beyond the calibration
// envelope measurement NewSystem performs anyway.
func exploreSpec(path string, w io.Writer) error {
	sp, err := loadSpec(path)
	if err != nil {
		return err
	}
	resolved, err := sp.Resolve()
	if err != nil {
		return err
	}
	prog, err := resolved.Program()
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(prog, core.Options{Spec: resolved})
	if err != nil {
		return err
	}
	defer sys.Close()

	fmt.Fprintf(w, "spec %s\nworkload %s, impedance %.0f%%\n",
		resolved.Key(), workloadName(resolved), 100*resolved.PDN.ImpedancePct)

	rails := sys.Rails()
	if rails == nil {
		iMin, iMax := sys.Envelope()
		rails = []core.RailInfo{{
			Name: "chip", Net: sys.Net, IMin: iMin, IMax: iMax,
			Thresholds: sys.Thresholds(),
		}}
	}

	fmt.Fprintf(w, "\nRails (%d)\n", len(rails))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rail\tres MHz\tperiod cyc\tpeak mOhm\tdc mOhm\tkernel\tIFloor A\tI[min,max] A\tV[min,max] V\tworst droop mV")
	for _, r := range rails {
		p := r.Net.Params()
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.3f\t%.3f\t%d\t%.2f\t[%.2f, %.2f]\t[%.3f, %.3f]\t%.1f\n",
			r.Name, p.ResonantHz/1e6, r.Net.ResonantPeriodCycles(),
			1e3*p.PeakZ, 1e3*p.DCResistance, r.Net.KernelLen(), p.IFloor,
			r.IMin, r.IMax, r.Net.VMin(), r.Net.VMax(),
			1e3*r.Net.WorstCaseDeviation(r.IMin, r.IMax))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	coupled := false
	for _, r := range rails {
		if r.Coupling != nil {
			coupled = true
		}
	}
	if coupled {
		fmt.Fprintf(w, "\nCoupling (row = victim, K of each source's transient injected)\n")
		tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprint(tw, "into\\from")
		for _, r := range rails {
			fmt.Fprintf(tw, "\t%s", r.Name)
		}
		fmt.Fprintln(tw)
		for i, r := range rails {
			fmt.Fprint(tw, r.Name)
			for j := range rails {
				switch {
				case i == j:
					fmt.Fprint(tw, "\t-")
				case r.Coupling == nil:
					fmt.Fprint(tw, "\t0")
				default:
					fmt.Fprintf(tw, "\t%.3f", r.Coupling[j])
				}
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if resolved.Control.Enabled {
		fmt.Fprintf(w, "\nControl thresholds\n")
		tw = tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "rail\tlow V\thigh V\twindow mV\tstable")
		for _, r := range rails {
			fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.1f\t%t\n",
				r.Name, r.Thresholds.Low, r.Thresholds.High,
				1e3*(r.Thresholds.High-r.Thresholds.Low), r.Thresholds.Stable)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func workloadName(sp spec.RunSpec) string {
	if sp.Workload.Name == "" {
		return "stressmark"
	}
	return sp.Workload.Name
}
