// Command didtd serves the experiment suite and the closed-loop simulator
// over HTTP, turning the one-shot CLI workflow into a long-lived service.
//
// Usage:
//
//	didtd -addr :8080 -max-concurrent 2 -queue-depth 8
//
// Endpoints (see internal/server for request/response schemas):
//
//	POST /v1/sweep      run experiment sweeps; the response body is exactly
//	                    the bytes cmd/experiments would print for the same
//	                    parameters, byte-identical at any -parallel setting
//	POST /v1/simulate   run one closed-loop simulation, JSON summary out;
//	                    accepts either flat fields or a full run spec
//	GET  /v1/spec/default  the fully resolved default run spec
//	GET  /healthz       liveness + drain state
//	GET  /metrics       telemetry registry snapshot
//	GET  /debug/pprof/  pprof profiling endpoints
//
// Admission is a bounded queue: when max-concurrent requests are running
// and queue-depth more are waiting, further work is rejected with 429. On
// SIGINT/SIGTERM the server stops accepting work (503), drains in-flight
// requests for up to -shutdown-grace, then exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"didt/internal/server"
	"didt/internal/sim"
	"didt/internal/spec"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		maxConc  = flag.Int("max-concurrent", 2, "sweep/simulate requests executing at once")
		queue    = flag.Int("queue-depth", 8, "admitted requests that may wait for a run slot")
		timeout  = flag.Duration("timeout", 5*time.Minute, "default per-request deadline (requests may set their own)")
		parallel = flag.Int("parallel", 0, "default sweep worker count per request (0 = GOMAXPROCS)")
		grace    = flag.Duration("shutdown-grace", 30*time.Second, "how long to drain in-flight requests on shutdown")
		dump     = flag.Bool("print-default-spec", false, "print the resolved default run spec as JSON and exit")
		listCaps = flag.Bool("list-cache-caps", false, "print the tunable shared-cache capacities and exit")
	)
	flag.Func("cache-cap", "override a shared cache capacity as name=entries (repeatable; 0 = unbounded; see -list-cache-caps)", func(v string) error {
		name, val, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want name=entries, got %q", v)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad entry count %q: %w", val, err)
		}
		if _, known := sim.CacheCapacity(name); !known {
			return fmt.Errorf("unknown cache %q (known: %s)", name, strings.Join(sim.CacheCapacityNames(), ", "))
		}
		return sim.SetCacheCapacity(name, n)
	})
	flag.Parse()

	if *listCaps {
		for _, name := range sim.CacheCapacityNames() {
			n, _ := sim.CacheCapacity(name)
			fmt.Printf("%s\t%d\n", name, n)
		}
		return
	}

	if *dump {
		// Exactly the bytes GET /v1/spec/default serves; ci.sh diffs this
		// against the checked-in golden to catch silent default drift.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "didtd:", err)
			os.Exit(1)
		}
		return
	}

	if *parallel > 0 {
		sim.SetDefaultWorkers(*parallel)
	}
	srv := server.New(server.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		Parallel:       *parallel,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "didtd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "didtd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "didtd: shutting down, draining in-flight requests")
	srv.BeginShutdown()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "didtd: drain incomplete:", err)
	}
	if err := hs.Shutdown(graceCtx); err != nil {
		fmt.Fprintln(os.Stderr, "didtd: shutdown:", err)
	}
}
