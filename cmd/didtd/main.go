// Command didtd serves the experiment suite and the closed-loop simulator
// over HTTP, turning the one-shot CLI workflow into a long-lived service.
//
// Usage:
//
//	didtd -addr :8080 -max-concurrent 2 -queue-depth 8
//
// Endpoints (see internal/server for request/response schemas):
//
//	POST /v1/sweep      run experiment sweeps; the response body is exactly
//	                    the bytes cmd/experiments would print for the same
//	                    parameters, byte-identical at any -parallel setting
//	POST /v1/simulate   run one closed-loop simulation, JSON summary out;
//	                    accepts either flat fields or a full run spec
//	POST /v1/batch      run many simulate specs under one admission slot,
//	                    one NDJSON record per entry in completion order
//	GET  /v1/spec/default  the fully resolved default run spec
//	GET  /v1/spans      recent spans as JSONL (?format=chrome for a Chrome
//	                    trace viewer file)
//	GET  /healthz       liveness, drain state, build identity
//	GET  /metrics       telemetry registry snapshot (?format=prometheus for
//	                    text exposition)
//	GET  /debug/pprof/  pprof profiling endpoints
//
// Requests log as structured JSON (or text with -log-format text) with a
// trace_id correlating each access-log line with its spans.
//
// Admission is a bounded queue: when max-concurrent requests are running
// and queue-depth more are waiting, further work is rejected with 429. On
// SIGINT/SIGTERM the server stops accepting work (503), drains in-flight
// requests for up to -shutdown-grace, then exits.
//
// With -store-dir set, every sweep/simulate/batch response is persisted in
// a disk-backed content-addressed store and repeat requests — including
// after a restart — are served from disk with a strong ETag and no
// admission cost (If-None-Match answers 304). -store-cap and -store-ttl
// bound the store; its janitor evicts oldest entries beyond either limit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"didt/internal/server"
	"didt/internal/sim"
	"didt/internal/spec"
	"didt/internal/store"
	"didt/internal/telemetry"
)

// newLogger builds the process logger from the -log-level/-log-format
// flags. Logs go to stderr; stdout stays reserved for -print-default-spec
// and friends.
func newLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want json or text)", format)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxConc   = flag.Int("max-concurrent", 2, "sweep/simulate requests executing at once")
		queue     = flag.Int("queue-depth", 8, "admitted requests that may wait for a run slot")
		timeout   = flag.Duration("timeout", 5*time.Minute, "default per-request deadline (requests may set their own)")
		parallel  = flag.Int("parallel", 0, "default sweep worker count per request (0 = GOMAXPROCS)")
		grace     = flag.Duration("shutdown-grace", 30*time.Second, "how long to drain in-flight requests on shutdown")
		dump      = flag.Bool("print-default-spec", false, "print the resolved default run spec as JSON and exit")
		listCaps  = flag.Bool("list-cache-caps", false, "print the tunable shared-cache capacities and exit")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		logFormat = flag.String("log-format", "json", "log output format: json or text")
		spans     = flag.Bool("spans", true, "record request/experiment spans (export at GET /v1/spans)")
		spanRing  = flag.Int("span-ring", telemetry.DefaultSpanRingCap, "completed spans kept in memory for export")
		storeDir  = flag.String("store-dir", "", "directory for the durable result store (empty = results are not persisted)")
		storeCap  = flag.Int("store-cap", 4096, "max entries the result store keeps (0 = unbounded)")
		storeTTL  = flag.Duration("store-ttl", 0, "max age of a stored result (0 = never expires)")
	)
	flag.Func("cache-cap", "override a shared cache capacity as name=entries (repeatable; 0 = unbounded; see -list-cache-caps)", func(v string) error {
		name, val, ok := strings.Cut(v, "=")
		if !ok {
			return fmt.Errorf("want name=entries, got %q", v)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("bad entry count %q: %w", val, err)
		}
		if _, known := sim.CacheCapacity(name); !known {
			return fmt.Errorf("unknown cache %q (known: %s)", name, strings.Join(sim.CacheCapacityNames(), ", "))
		}
		return sim.SetCacheCapacity(name, n)
	})
	flag.Parse()

	if *listCaps {
		for _, name := range sim.CacheCapacityNames() {
			n, _ := sim.CacheCapacity(name)
			fmt.Printf("%s\t%d\n", name, n)
		}
		return
	}

	if *dump {
		// Exactly the bytes GET /v1/spec/default serves; ci.sh diffs this
		// against the checked-in golden to catch silent default drift.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(spec.Default()); err != nil {
			fmt.Fprintln(os.Stderr, "didtd:", err)
			os.Exit(1)
		}
		return
	}

	logger, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "didtd:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)
	sim.SetCacheLogger(logger)

	tracer := telemetry.NewTracer(0)
	tracer.SetSpanRingCap(*spanRing)
	tracer.SetEnabled(*spans)

	if *parallel > 0 {
		sim.SetDefaultWorkers(*parallel)
	}
	var resultStore *store.Store
	if *storeDir != "" {
		resultStore, err = store.Open(*storeDir, store.Options{
			Capacity: *storeCap,
			TTL:      *storeTTL,
			Registry: telemetry.Default(),
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "didtd:", err)
			os.Exit(1)
		}
		logger.Info("result store open", "dir", *storeDir,
			"entries", resultStore.Len(), "bytes", resultStore.Bytes(),
			"cap", *storeCap, "ttl", storeTTL.String())
	}
	srv := server.New(server.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		Parallel:       *parallel,
		Store:          resultStore,
		Logger:         logger,
		Spans:          tracer,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "max_concurrent", *maxConc, "queue_depth", *queue, "spans", *spans)

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight requests", "grace", grace.String())
	srv.BeginShutdown()
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Drain(graceCtx); err != nil {
		logger.Warn("drain incomplete", "err", err)
	}
	if err := hs.Shutdown(graceCtx); err != nil {
		logger.Warn("shutdown error", "err", err)
	}
}
