// Command didtsim runs one workload through the coupled
// processor/power/PDN/controller simulation and prints run statistics.
//
// Usage:
//
//	didtsim -workload stressmark -impedance 2 -control -delay 2
//	didtsim -workload gcc -impedance 3
//	didtsim -asm program.s -control -mechanism FU/DL1
package main

import (
	"flag"
	"fmt"
	"os"

	"didt/internal/actuator"
	"didt/internal/core"
	"didt/internal/isa"
	"didt/internal/trace"
	"didt/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "stressmark", "stressmark, a SPEC2000 name (see workload.Names), or 'asm'")
		asmPath   = flag.String("asm", "", "path to an assembly file (used with -workload asm)")
		impedance = flag.Float64("impedance", 2, "impedance as a multiple of target (1 = meets spec)")
		control   = flag.Bool("control", false, "enable the dI/dt threshold controller")
		mechName  = flag.String("mechanism", "ideal", "FU, FU/DL1, FU/DL1/IL1 or ideal")
		delay     = flag.Int("delay", 2, "sensor/controller delay in cycles")
		noise     = flag.Float64("noise", 0, "sensor noise amplitude in mV")
		cycles    = flag.Uint64("cycles", 400000, "maximum cycles")
		iters     = flag.Int("iterations", 3000, "workload loop iterations")
		seed      = flag.Int64("seed", 0, "noise seed")
		dumpCur   = flag.String("dump-current", "", "write the per-cycle current trace (CSV) to this path")
		dumpVolt  = flag.String("dump-voltage", "", "write the per-cycle voltage trace (CSV) to this path")
	)
	flag.Parse()

	prog, err := loadProgram(*wl, *asmPath, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mech, err := mechanism(*mechName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	sys, err := core.NewSystem(prog, core.Options{
		ImpedancePct: *impedance,
		Control:      *control,
		Mechanism:    mech,
		Delay:        *delay,
		NoiseMV:      *noise,
		MaxCycles:    *cycles,
		Seed:         *seed,
		RecordTraces: *dumpCur != "" || *dumpVolt != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := sys.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload            %s\n", *wl)
	fmt.Printf("impedance           %.0f%% of target\n", *impedance*100)
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("instructions        %d (IPC %.2f)\n", res.Stats.Instructions, res.IPC())
	fmt.Printf("current envelope    [%.1f, %.1f] A\n", res.IMin, res.IMax)
	fmt.Printf("voltage range       [%.4f, %.4f] V (nominal %.2f)\n", res.MinV, res.MaxV, res.VNominal)
	fmt.Printf("emergencies         %d cycles (%.4g%% of measured)\n", res.Emergencies, res.EmergencyFreq*100)
	fmt.Printf("energy              %.4g J (avg power %.1f W)\n", res.Energy, res.AvgPower)
	fmt.Printf("branch mispredicts  %d / %d lookups\n", res.Stats.Mispredicts, res.Stats.BranchLookups)
	fmt.Printf("L1D/L1I/L2 miss     %.2f%% / %.2f%% / %.2f%%\n",
		res.Stats.L1DMissRate*100, res.Stats.L1IMissRate*100, res.Stats.L2MissRate*100)
	if *control {
		th := res.Thresholds
		fmt.Printf("controller          %s, delay %d, noise %.0fmV\n", mech.Name, *delay, *noise)
		if th.Stable {
			fmt.Printf("thresholds          low %.4f V / high %.4f V (window %.1f mV)\n", th.Low, th.High, th.SafeWindow*1e3)
		} else {
			fmt.Printf("thresholds          UNSTABLE (no guaranteed pair exists; conservative fallback used)\n")
		}
		fmt.Printf("actuations          %d gating, %d phantom-firing\n", res.LowEvents, res.HighEvents)
	}

	if *dumpCur != "" {
		if err := writeTrace(*dumpCur, res.CurrentTrace, "current_A"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("current trace       %s (%d samples)\n", *dumpCur, len(res.CurrentTrace))
	}
	if *dumpVolt != "" {
		if err := writeTrace(*dumpVolt, res.VoltageTrace, "voltage_V"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("voltage trace       %s (%d samples)\n", *dumpVolt, len(res.VoltageTrace))
	}
}

func writeTrace(path string, tr trace.Trace, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteCSV(f, name)
}

func loadProgram(wl, asmPath string, iters int) (isa.Program, error) {
	switch wl {
	case "stressmark":
		return workload.Stressmark(workload.StressmarkParams{Iterations: iters}), nil
	case "asm":
		f, err := os.Open(asmPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return isa.Parse(f)
	default:
		p, err := workload.ProfileByName(wl)
		if err != nil {
			return nil, err
		}
		p.Iterations = iters
		return workload.Generate(p), nil
	}
}

func mechanism(name string) (actuator.Mechanism, error) {
	switch name {
	case "FU":
		return actuator.FU, nil
	case "FU/DL1":
		return actuator.FUDL1, nil
	case "FU/DL1/IL1":
		return actuator.FUDL1IL1, nil
	case "ideal":
		return actuator.Ideal, nil
	}
	return actuator.Mechanism{}, fmt.Errorf("unknown mechanism %q", name)
}
