// Command didtsim runs workloads through the coupled
// processor/power/PDN/controller simulation and prints run statistics.
//
// Usage:
//
//	didtsim -workload stressmark -impedance 2 -control -delay 2
//	didtsim -workload gcc -impedance 3
//	didtsim -workload swim,gcc,galgel -parallel 4
//	didtsim -asm program.s -control -mechanism FU/DL1
//
// -workload accepts a comma-separated list; independent runs are fanned
// out across -parallel workers and reported in list order (results are
// identical at any worker count).
//
// Observability: -trace-out writes a cycle-level event trace of every run
// (Chrome trace-event format by default, one stream per workload — open in
// Perfetto or chrome://tracing; -trace-format jsonl for line-oriented
// JSON); -metrics-out writes the metrics run manifest; -cpuprofile and
// -memprofile write pprof profiles; -progress keeps a live status line on
// stderr for multi-workload runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"didt/internal/actuator"
	"didt/internal/core"
	"didt/internal/isa"
	"didt/internal/sim"
	"didt/internal/spec"
	"didt/internal/telemetry"
	"didt/internal/trace"
)

func main() {
	var (
		wl        = flag.String("workload", "stressmark", "comma-separated list of: stressmark, a SPEC2000 name (see workload.Names), or 'asm'")
		asmPath   = flag.String("asm", "", "path to an assembly file (used with -workload asm)")
		impedance = flag.Float64("impedance", 2, "impedance as a multiple of target (1 = meets spec)")
		control   = flag.Bool("control", false, "enable the dI/dt threshold controller")
		mechName  = flag.String("mechanism", "ideal", "FU, FU/DL1, FU/DL1/IL1 or ideal")
		delay     = flag.Int("delay", 2, "sensor/controller delay in cycles")
		noise     = flag.Float64("noise", 0, "sensor noise amplitude in mV")
		cycles    = flag.Uint64("cycles", 400000, "maximum cycles")
		iters     = flag.Int("iterations", 3000, "workload loop iterations")
		parallel  = flag.Int("parallel", 0, "worker count for multi-workload runs (0 = GOMAXPROCS)")
		dumpCur   = flag.String("dump-current", "", "write the per-cycle current trace (CSV) to this path (single workload only)")
		dumpVolt  = flag.String("dump-voltage", "", "write the per-cycle voltage trace (CSV) to this path (single workload only)")

		traceOut    = flag.String("trace-out", "", "write a cycle-level event trace to this path")
		traceFormat = flag.String("trace-format", "chrome", "trace format: chrome (Perfetto/chrome://tracing) or jsonl")
		traceRing   = flag.Int("trace-ring", 0, "events retained per trace stream (0 = default)")
		metricsOut  = flag.String("metrics-out", "", "write the metrics run manifest (JSON) to this path")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this path")
		progress    = flag.Bool("progress", false, "live progress line on stderr")
	)
	var seed spec.Seed
	flag.Var(&seed, "seed", "noise seed (only applied when set)")
	flag.Parse()

	workloads := strings.Split(*wl, ",")
	if len(workloads) > 1 && (*dumpCur != "" || *dumpVolt != "") {
		fmt.Fprintln(os.Stderr, "-dump-current/-dump-voltage require a single workload")
		os.Exit(2)
	}
	mech, err := actuator.ByName(*mechName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Every flag is an override on one RunSpec; the per-workload specs
	// below differ only in their workload section.
	var base spec.RunSpec
	base.PDN.ImpedancePct = *impedance
	base.Control.Enabled = *control
	base.Actuator.Mechanism = *mechName
	base.Sensor.DelayCycles = *delay
	base.Sensor.NoiseMV = *noise
	base.Budget.MaxCycles = *cycles
	base.Workload.Iterations = *iters
	base.Seed = seed

	var tracer *telemetry.Tracer
	if *traceOut != "" {
		if *traceFormat != "chrome" && *traceFormat != "jsonl" {
			fmt.Fprintf(os.Stderr, "unknown -trace-format %q (chrome or jsonl)\n", *traceFormat)
			os.Exit(2)
		}
		tracer = telemetry.NewTracer(*traceRing)
	}
	if *progress {
		pl := telemetry.NewProgress(os.Stderr, "didtsim", 0)
		sim.SetProgress(pl.Update)
		defer pl.Done()
	}
	stopCPU, err := telemetry.StartCPUProfile(*cpuProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	type outcome struct {
		name string
		res  *core.Result
		spec spec.RunSpec
	}
	results, err := sim.Sweep(context.Background(), *parallel, workloads, func(_ context.Context, name string) (outcome, error) {
		sp := base
		prog, err := loadProgram(&sp, name, *asmPath)
		if err != nil {
			return outcome{}, err
		}
		sys, err := core.NewSystem(prog, core.Options{
			Spec:          sp,
			RecordTraces:  *dumpCur != "" || *dumpVolt != "",
			Telemetry:     tracer,
			TelemetryName: name,
		})
		if err != nil {
			return outcome{}, err
		}
		defer sys.Close()
		res, err := sys.Run()
		if err != nil {
			return outcome{}, err
		}
		return outcome{name: name, res: res, spec: sys.Spec()}, nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, o := range results {
		if i > 0 {
			fmt.Println()
		}
		report(o.name, o.res, *impedance, *control, mech, *delay, *noise)
	}

	res := results[len(results)-1].res
	if *dumpCur != "" {
		if err := writeTrace(*dumpCur, res.CurrentTrace, "current_A"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("current trace       %s (%d samples)\n", *dumpCur, len(res.CurrentTrace))
	}
	if *dumpVolt != "" {
		if err := writeTrace(*dumpVolt, res.VoltageTrace, "voltage_V"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("voltage trace       %s (%d samples)\n", *dumpVolt, len(res.VoltageTrace))
	}

	if err := stopCPU(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := writeEventTrace(*traceOut, *traceFormat, tracer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("event trace         %s (%d streams)\n", *traceOut, len(tracer.Streams()))
	}
	if *metricsOut != "" {
		m := telemetry.NewManifest("didtsim", sim.DefaultWorkers(), telemetry.Default(), tracer)
		// Record the resolved spec (and its content hash) of the last run,
		// mirroring which run the trace dumps describe.
		last := results[len(results)-1].spec
		m.Spec = last
		m.SpecKey = last.Key()
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		err = m.WriteJSON(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("metrics manifest    %s\n", *metricsOut)
	}
}

func writeEventTrace(path, format string, tracer *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		err = telemetry.WriteJSONL(f, tracer)
	} else {
		err = telemetry.WriteChromeTrace(f, tracer, 0)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func report(wl string, res *core.Result, impedance float64, control bool, mech actuator.Mechanism, delay int, noise float64) {
	fmt.Printf("workload            %s\n", wl)
	fmt.Printf("impedance           %.0f%% of target\n", impedance*100)
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("instructions        %d (IPC %.2f)\n", res.Stats.Instructions, res.IPC())
	fmt.Printf("current envelope    [%.1f, %.1f] A\n", res.IMin, res.IMax)
	fmt.Printf("voltage range       [%.4f, %.4f] V (nominal %.2f)\n", res.MinV, res.MaxV, res.VNominal)
	fmt.Printf("emergencies         %d cycles (%.4g%% of measured)\n", res.Emergencies, res.EmergencyFreq*100)
	fmt.Printf("energy              %.4g J (avg power %.1f W)\n", res.Energy, res.AvgPower)
	fmt.Printf("branch mispredicts  %d / %d lookups\n", res.Stats.Mispredicts, res.Stats.BranchLookups)
	fmt.Printf("L1D/L1I/L2 miss     %.2f%% / %.2f%% / %.2f%%\n",
		res.Stats.L1DMissRate*100, res.Stats.L1IMissRate*100, res.Stats.L2MissRate*100)
	if control {
		th := res.Thresholds
		fmt.Printf("controller          %s, delay %d, noise %.0fmV\n", mech.Name, delay, noise)
		if th.Stable {
			fmt.Printf("thresholds          low %.4f V / high %.4f V (window %.1f mV)\n", th.Low, th.High, th.SafeWindow*1e3)
		} else {
			fmt.Printf("thresholds          UNSTABLE (no guaranteed pair exists; conservative fallback used)\n")
		}
		fmt.Printf("actuations          %d gating, %d phantom-firing\n", res.LowEvents, res.HighEvents)
	}
}

func writeTrace(path string, tr trace.Trace, name string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteCSV(f, name)
}

// loadProgram fills sp's workload section for the named workload and
// resolves the program through the spec (misspelled benchmark names get
// did-you-mean errors from spec validation). "asm" programs come from a
// file, outside the serializable spec; sp keeps the name for the record.
func loadProgram(sp *spec.RunSpec, wl, asmPath string) (isa.Program, error) {
	sp.Workload.Name = wl
	if wl == "asm" {
		f, err := os.Open(asmPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return isa.Parse(f)
	}
	resolved, err := sp.Resolve()
	if err != nil {
		return nil, err
	}
	return resolved.Program()
}
