// Command stressgen emits the dI/dt stressmark as assembly (the paper's
// Figure 8 artifact) and can tune its loop shape to the resonant period of
// a given system.
//
// Usage:
//
//	stressgen                      # print the default stressmark
//	stressgen -tune -impedance 2   # search loop shapes for the deepest swing
package main

import (
	"flag"
	"fmt"
	"os"

	"didt/internal/core"
	"didt/internal/tuner"
	"didt/internal/workload"
)

func main() {
	var (
		tune      = flag.Bool("tune", false, "sweep loop shapes and report the deepest voltage swing")
		impedance = flag.Float64("impedance", 2, "impedance multiple for tuning runs")
		divs      = flag.Int("divs", 0, "chained divides in the quiet phase (0 = default)")
		alu       = flag.Int("alu", 0, "burst ALU operations (0 = default)")
		stores    = flag.Int("stores", 0, "burst stores (0 = default)")
		iters     = flag.Int("iterations", 100, "loop trip count for the emitted program")
	)
	flag.Parse()

	if *tune {
		var opts core.Options
		opts.Spec.PDN.ImpedancePct = *impedance
		best, all, err := tuner.TuneStressmark(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-6s %-6s %-8s %-12s %-10s %s\n", "divs", "alu", "stores", "cycles/iter", "dev (mV)", "emergencies")
		for _, r := range all {
			fmt.Printf("%-6d %-6d %-8d %-12.1f %-10.1f %d\n",
				r.Params.ChainedDivs, r.Params.BurstALU, r.Params.BurstStores,
				r.CyclesPerIter, r.MaxDeviation*1e3, r.Emergencies)
		}
		fmt.Printf("\nbest: divs=%d alu=%d stores=%d  deviation %.1f mV\n",
			best.Params.ChainedDivs, best.Params.BurstALU, best.Params.BurstStores,
			best.MaxDeviation*1e3)
		return
	}

	p := workload.StressmarkParams{
		Iterations:  *iters,
		ChainedDivs: *divs,
		BurstALU:    *alu,
		BurstStores: *stores,
	}
	fmt.Print(workload.StressmarkAssembly(p))
}
